//! Model-checking scenarios: tiny, fully deterministic concurrent
//! workloads over the four index designs, run under a chosen schedule
//! policy, with every checkable property gathered into a [`RunReport`].
//!
//! ## Workload discipline
//!
//! The linearizability spec ([`crate::lin`]) models each workload key
//! as a live-entry counter with one canonical value, which is only
//! sound if:
//!
//! * every insert of `key` carries `value_of(key)` — so scan rows are
//!   attributable to a key, not a specific insert;
//! * no client ever re-inserts a key it already inserted, and clients
//!   insert from **disjoint offset sets** — so at most one insert of
//!   any `(key, value)` pair is ever issued and the index layer's
//!   value-probe retry absorption is exact;
//! * preloaded keys (offset 0 of every unit) are never inserted or
//!   deleted — they are immutable ballast the scans validate exactly.
//!
//! Deletes and lookups intentionally target *any* workload offset, so
//! clients still contend on the same keys — that cross-client traffic
//! is where interleaving bugs live. Contention concentrates on
//! [`HOT_UNITS`] hot units of the loaded tree so schedules actually
//! collide instead of diffusing over the key space.

use crate::history::HistoryRecorder;
use crate::lin::{self, CheckStats, LinViolation, Spec};
use crate::policy::{new_trace, Pct, RandomWalk, Replay, SharedTrace};
use blink::PageLayout;
use chaos::{ChaosController, FaultPlan};
use nam::{NamCluster, PartitionMap};
use namdex_core::{CoarseGrained, Design, FgConfig, FineGrained, Hybrid, Learned};
use racecheck::Racecheck;
use rdma_sim::{ClusterSpec, Durability, Endpoint, LinkDegrade};
use sanitizer::{HeldLock, Sanitizer, Violation};
use simnet::rng::DetRng;
use simnet::{FifoPolicy, Sim, SimDur, SimTime};
use std::collections::BTreeSet;

/// Loaded units; keys are `unit * 8 + offset`, unit `i` preloaded with
/// `(i * 8, i)`.
pub const LOAD_UNITS: u64 = 64;
/// Units the workload contends on.
pub const HOT_UNITS: std::ops::Range<u64> = 20..24;
/// Page size shared by the tree builds and the sanitizer.
const PAGE_SIZE: usize = 256;

/// Which index design a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DesignKind {
    /// Coarse-grained (RPC to the home server, design 1).
    Cg,
    /// Fine-grained (one-sided verbs + per-node locks, design 2).
    Fg,
    /// Hybrid (one-sided reads, RPC writes, design 3).
    Hybrid,
    /// Learned (client-side model routing over the hybrid tree,
    /// design 4).
    Learned,
}

impl DesignKind {
    /// All four designs, in matrix order.
    pub const ALL: [DesignKind; 4] = [
        DesignKind::Cg,
        DesignKind::Fg,
        DesignKind::Hybrid,
        DesignKind::Learned,
    ];

    /// Stable lowercase name (CLI flags, file format, reports).
    pub fn name(self) -> &'static str {
        match self {
            DesignKind::Cg => "cg",
            DesignKind::Fg => "fg",
            DesignKind::Hybrid => "hybrid",
            DesignKind::Learned => "learned",
        }
    }

    /// Parse [`Self::name`] output.
    pub fn parse(s: &str) -> Option<DesignKind> {
        Self::ALL.into_iter().find(|d| d.name() == s)
    }
}

/// Fault regime a scenario runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// No faults: every op completes, delete flags are exact.
    None,
    /// Message-loss window on every link plus a client killed on its
    /// next lock acquire. Under loss the op layer retries, so delete
    /// found-flags become best-effort (see [`crate::lin`]).
    Chaos,
    /// Crash the hot server mid-run under `Durability::Wal` — RAM is
    /// genuinely wiped, then recovered from checkpoint + log replay
    /// while clients retry against it. Every interleaving the schedule
    /// policy picks moves the crash relative to in-flight appends,
    /// flushes and acks, so linearizability is checked *across* a
    /// recovery. Delete found-flags are best-effort (a landed delete's
    /// response can die with the server).
    CrashRecover,
}

impl FaultMode {
    /// Stable lowercase name (file format, reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::None => "nofault",
            FaultMode::Chaos => "chaos",
            FaultMode::CrashRecover => "crash",
        }
    }

    /// Parse [`Self::name`] output.
    pub fn parse(s: &str) -> Option<FaultMode> {
        [FaultMode::None, FaultMode::Chaos, FaultMode::CrashRecover]
            .into_iter()
            .find(|f| f.name() == s)
    }
}

/// A fully pinned workload: `(Scenario, PolicyKind)` names one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Index design under test.
    pub design: DesignKind,
    /// Fault regime.
    pub fault: FaultMode,
    /// Workload seed (op mix and key choices).
    pub seed: u64,
    /// Concurrent clients (at most 3: insert offsets partition 1..=6).
    pub clients: u64,
    /// Sequential ops each client issues.
    pub ops_per_client: u64,
    /// Issue mid-run range scans (forces whole-history linearizability
    /// checking — keep the workload tiny).
    pub with_scans: bool,
    /// Client-side cache capacity handed to the design build (`Some(0)`
    /// = unbounded, `None` = caching off). Cache-coherence bugs (a
    /// cached artifact served against a rebuilt pool) are invisible
    /// without it.
    pub cache_capacity: Option<usize>,
}

impl Scenario {
    /// Standard point-op scenario (per-key checkable).
    pub fn point_ops(design: DesignKind, fault: FaultMode, seed: u64) -> Scenario {
        Scenario {
            design,
            fault,
            seed,
            clients: 3,
            ops_per_client: 12,
            with_scans: false,
            cache_capacity: None,
        }
    }

    /// Tiny scenario with concurrent scans (whole-history checking).
    pub fn with_scans(design: DesignKind, fault: FaultMode, seed: u64) -> Scenario {
        Scenario {
            design,
            fault,
            seed,
            clients: 2,
            ops_per_client: 5,
            with_scans: true,
            cache_capacity: None,
        }
    }

    /// Same scenario with the client-side cache enabled (`Some(0)` =
    /// unbounded).
    pub fn with_cache(mut self, capacity: Option<usize>) -> Scenario {
        self.cache_capacity = capacity;
        self
    }
}

/// Schedule policy to install for a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// No policy installed: the executor's raw FIFO path (baseline).
    Uncontrolled,
    /// Explicit [`FifoPolicy`] — must be bit-identical to
    /// [`PolicyKind::Uncontrolled`].
    Fifo,
    /// Uniform random walk with its own seed.
    RandomWalk {
        /// Schedule seed (independent of the workload seed).
        seed: u64,
    },
    /// PCT priority scheduling.
    Pct {
        /// Schedule seed.
        seed: u64,
        /// Bug depth `d` (`d - 1` priority change points).
        depth: u32,
    },
    /// Replay a recorded decision list (counterexamples, DFS prefixes).
    Replay {
        /// Choice-point decisions, in order.
        decisions: Vec<u32>,
    },
}

/// Everything observed in one run.
#[derive(Debug)]
pub struct RunReport {
    /// Linearizability verdict over the recorded history.
    pub lin: Result<CheckStats, LinViolation>,
    /// Sanitizer findings (protocol races, version tampering, ...).
    pub san_violations: Vec<Violation>,
    /// Happens-before race detector findings (unvalidated optimistic
    /// reads, write-write races, stale-epoch cached uses).
    pub race_violations: Vec<racecheck::Violation>,
    /// Locks still held at quiescence by *live* clients (dead owners
    /// are excused under [`FaultMode::Chaos`] — lease recovery frees
    /// them lazily on next touch).
    pub held_leaks: Vec<HeldLock>,
    /// Tasks still live after the sim drained — must be 0.
    pub task_leak: usize,
    /// Virtual end time of the run, nanoseconds.
    pub end_nanos: u64,
    /// Order-insensitive-free digest of the completed history (event
    /// order, args, outcomes, timestamps).
    pub history_digest: u64,
    /// Digest of the decision trace.
    pub schedule_digest: u64,
    /// The decision trace itself (replayable).
    pub decisions: Vec<u32>,
    /// Full `(candidate count, chosen index)` record per choice point —
    /// what DFS enumeration needs to know where a successor exists.
    pub trace_counts: Vec<(u32, u32)>,
    /// Completed + pending events recorded.
    pub events: usize,
    /// Completed crash/recovery cycles (non-zero only under
    /// [`FaultMode::CrashRecover`]).
    pub recoveries: usize,
}

impl RunReport {
    /// No violation of any checked property.
    pub fn clean(&self) -> bool {
        self.lin.is_ok()
            && self.san_violations.is_empty()
            && self.race_violations.is_empty()
            && self.held_leaks.is_empty()
            && self.task_leak == 0
    }
}

/// FNV-1a over a stream of u64 words.
#[derive(Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// Fresh digest (FNV offset basis).
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Fold one word.
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Final value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

fn digest_history(events: &[crate::history::Event]) -> u64 {
    use rdma_sim::observer::{OpArgs, OpOutcome};
    let mut d = Digest::new();
    for ev in events {
        d.word(ev.client);
        match ev.args {
            OpArgs::Lookup { key } => {
                d.word(1);
                d.word(key);
            }
            OpArgs::Range { lo, hi } => {
                d.word(2);
                d.word(lo);
                d.word(hi);
            }
            OpArgs::Insert { key, value } => {
                d.word(3);
                d.word(key);
                d.word(value);
            }
            OpArgs::Delete { key } => {
                d.word(4);
                d.word(key);
            }
        }
        match &ev.outcome {
            OpOutcome::Lookup(v) => {
                d.word(10);
                d.word(v.map_or(u64::MAX, |v| v));
            }
            OpOutcome::Range(rows) => {
                d.word(11);
                d.word(rows.len() as u64);
                for &(k, v) in rows {
                    d.word(k);
                    d.word(v);
                }
            }
            OpOutcome::Insert => d.word(12),
            OpOutcome::Delete(f) => d.word(13 + *f as u64),
            OpOutcome::Failed => d.word(15),
        }
        d.word(ev.invoke.as_nanos());
        d.word(ev.response.as_nanos());
    }
    d.finish()
}

/// Digest of a decision trace.
pub fn digest_decisions(decisions: &[u32]) -> u64 {
    let mut d = Digest::new();
    for &c in decisions {
        d.word(c as u64);
    }
    d.finish()
}

/// Canonical value every insert of `key` carries.
pub fn value_of(key: u64) -> u64 {
    key ^ 0xABCD
}

fn build(sc: &Scenario, nam: &NamCluster) -> Design {
    let kind = sc.design;
    let items = (0..LOAD_UNITS).map(|i| (i * 8, i));
    let partition = PartitionMap::range_uniform(nam.num_servers(), LOAD_UNITS * 8);
    let cfg = FgConfig {
        layout: PageLayout::new(PAGE_SIZE),
        fill: 0.7,
        head_stride: 4,
        cache_capacity: sc.cache_capacity,
    };
    match kind {
        DesignKind::Cg => Design::Cg(CoarseGrained::build(
            nam,
            PageLayout::new(PAGE_SIZE),
            partition,
            items,
            0.7,
        )),
        DesignKind::Fg => Design::Fg(FineGrained::build(&nam.rdma, cfg, items)),
        DesignKind::Hybrid => Design::Hybrid(Hybrid::build(nam, cfg, partition, items)),
        DesignKind::Learned => Design::Learned(Learned::build(nam, cfg, partition, items)),
    }
}

/// One client's sequential op stream. Insert keys come from the
/// client's private offsets (`2c + 1`, `2c + 2`); deletes and lookups
/// hit any workload offset of the hot units, so clients contend.
async fn client_loop(idx: Design, ep: Endpoint, c: u64, sc: Scenario) {
    let mut rng = DetRng::seed_from_u64(sc.seed ^ (0x5CE_A127 + c));
    let my_offsets = [2 * c + 1, 2 * c + 2];
    let hot_span = HOT_UNITS.end - HOT_UNITS.start;
    let max_offset = 2 * sc.clients;
    let mut inserted: BTreeSet<u64> = BTreeSet::new();
    for _ in 0..sc.ops_per_client {
        let unit = HOT_UNITS.start + rng.next_u64_below(hot_span);
        let roll = rng.next_u64_below(100);
        let scan_cut = if sc.with_scans { 20 } else { 0 };
        if roll < scan_cut {
            let lo = HOT_UNITS.start * 8;
            let hi = HOT_UNITS.end * 8 - 1;
            let _ = idx.range(&ep, lo, hi).await;
        } else if roll < scan_cut + 40 {
            // Insert a fresh key from this client's private offsets.
            let key = unit * 8 + my_offsets[rng.next_u64_below(2) as usize];
            if inserted.insert(key) {
                let _ = idx.insert(&ep, key, value_of(key)).await;
            } else {
                // Key already used: read it instead (keeps op count).
                let _ = idx.lookup(&ep, key).await;
            }
        } else if roll < scan_cut + 65 {
            // Delete any workload key of the hot units — including
            // other clients' inserts (contention), never offset 0.
            let key = unit * 8 + 1 + rng.next_u64_below(max_offset);
            let _ = idx.delete(&ep, key).await;
        } else {
            // Lookup any key of the unit, loaded key included.
            let key = unit * 8 + rng.next_u64_below(max_offset + 1);
            let _ = idx.lookup(&ep, key).await;
        }
    }
}

fn chaos_plan(victim: u64, servers: usize, seed: u64) -> FaultPlan {
    // A message-loss window across every link while the workload is in
    // full flight (drops hit request and response legs alike, so
    // landed-but-unacknowledged ops retry), then a client killed on its
    // next lock acquire once links heal. The plan seed drives the
    // cluster's drop-roll RNG — without it every run would share drop
    // seed 0 and the matrix would resample one drop pattern forever.
    let mut plan = FaultPlan::with_seed(seed);
    for s in 0..servers {
        plan = plan.degrade_link(
            SimTime::from_micros(3),
            s,
            LinkDegrade {
                drop_chance: 0.25,
                extra_delay: SimDur::ZERO,
                bandwidth_factor: 1.0,
            },
        );
        plan = plan.restore_link(SimTime::from_micros(120), s);
    }
    plan.kill_on_lock_acquire(SimTime::from_micros(130), victim)
}

/// Hot server under the scenario partition: [`HOT_UNITS`] maps to keys
/// 160..192, which land on server 1 of the uniform 4-way range split
/// over `LOAD_UNITS * 8` keys.
const CRASH_SERVER: usize = 1;

fn crash_plan(seed: u64) -> FaultPlan {
    // Crash the hot server while every client has ops in flight, bring
    // it back while they are still retrying. With the 30us boot the
    // recovery (boot + checkpoint/log stream + replay) completes well
    // inside the op layer's retry budget, so the workload rides it out.
    FaultPlan::with_seed(seed)
        .crash_server(SimTime::from_micros(20), CRASH_SERVER)
        .restart_server(SimTime::from_micros(45), CRASH_SERVER)
}

/// Run `sc` under `policy`, returning the full report.
pub fn run_scenario(sc: &Scenario, policy: &PolicyKind) -> RunReport {
    run_scenario_with_history(sc, policy).0
}

/// [`run_scenario`], additionally returning the recorded history
/// (diagnostics, tests).
pub fn run_scenario_with_history(
    sc: &Scenario,
    policy: &PolicyKind,
) -> (RunReport, Vec<crate::history::Event>) {
    assert!(
        (1..=3).contains(&sc.clients),
        "insert-offset partitioning supports 1..=3 clients"
    );
    let sim = Sim::new();
    let trace: SharedTrace = new_trace();
    match policy {
        PolicyKind::Uncontrolled => {}
        PolicyKind::Fifo => sim.set_schedule_policy(Box::new(FifoPolicy)),
        PolicyKind::RandomWalk { seed } => {
            sim.set_schedule_policy(Box::new(RandomWalk::new(*seed, trace.clone())))
        }
        PolicyKind::Pct { seed, depth } => {
            // est_len sized to the observed choice-point counts of
            // these workloads (hundreds), so change points land mid-run.
            sim.set_schedule_policy(Box::new(Pct::new(*seed, *depth, 400, trace.clone())))
        }
        PolicyKind::Replay { decisions } => {
            sim.set_schedule_policy(Box::new(Replay::new(decisions.clone(), trace.clone())))
        }
    }

    let spec = match sc.fault {
        // Crash/recovery only means anything when RAM loss is real:
        // under Wal the restarted server replays checkpoint + log
        // before reporting healthy. The short boot keeps recovery
        // inside the op layer's bounded retry budget.
        FaultMode::CrashRecover => ClusterSpec {
            durability: Durability::Wal,
            wal_restart_boot_latency: SimDur::from_micros(30),
            ..ClusterSpec::default()
        },
        _ => ClusterSpec::default(),
    };
    let nam = NamCluster::new(&sim, spec);
    let idx = build(sc, &nam);
    let recorder = HistoryRecorder::install(&nam.rdma);
    let san = Sanitizer::install(&nam.rdma, PAGE_SIZE);
    sanitizer::walk::register_design(&san, &idx);
    let race = Racecheck::install(&nam.rdma, PAGE_SIZE);

    let eps: Vec<Endpoint> = (0..sc.clients).map(|_| Endpoint::new(&nam.rdma)).collect();
    match sc.fault {
        FaultMode::None => {}
        FaultMode::Chaos => {
            let victim = eps[sc.clients as usize - 1].client_id();
            ChaosController::install_nam(
                &sim,
                &nam,
                chaos_plan(victim, nam.num_servers(), sc.seed),
            );
        }
        FaultMode::CrashRecover => {
            ChaosController::install_nam(&sim, &nam, crash_plan(sc.seed));
        }
    }
    for (c, ep) in eps.into_iter().enumerate() {
        sim.spawn(client_loop(idx.clone(), ep, c as u64, sc.clone()));
    }
    sim.run();

    // Quiescent verification scan on a fresh endpoint: its full-range
    // rows become per-key count observations for the checker, and its
    // traversal reclaims any lease-expired lock left by a killed client
    // (which is what lets the sanitizer judge the reclaim CAS).
    let ep = Endpoint::new(&nam.rdma);
    let idx2 = idx.clone();
    sim.spawn(async move {
        let _ = idx2.range(&ep, 0, u64::MAX - 1).await.expect("final scan");
    });
    let end = sim.run();

    // Quiescence leak checks: every task drained, and no tracked lock
    // still held by a live owner. (A dead owner's lock is legal under
    // chaos — lease recovery frees it on next touch — but with no
    // faults every client is live, so any residue is a leak.)
    let task_leak = sim.live_tasks();
    let held_leaks: Vec<HeldLock> = san
        .held_locks()
        .into_iter()
        .filter(|l| !nam.rdma.client_dead(l.owner))
        .collect();

    let events = recorder.history();
    let spec = Spec {
        loaded: (0..LOAD_UNITS).map(|i| (i * 8, i)).collect(),
        value_of,
        strict_delete_flag: sc.fault == FaultMode::None,
    };
    let lin = lin::check(&events, &spec);
    let trace_counts: Vec<(u32, u32)> = trace.borrow().clone();
    let decisions: Vec<u32> = trace_counts.iter().map(|&(_, c)| c).collect();
    let report = RunReport {
        lin,
        san_violations: san.violations(),
        race_violations: race.violations(),
        held_leaks,
        task_leak,
        end_nanos: end.as_nanos(),
        history_digest: digest_history(&events),
        schedule_digest: digest_decisions(&decisions),
        decisions,
        trace_counts,
        events: events.len(),
        recoveries: nam.rdma.recovery_records().len(),
    };
    (report, events)
}
