//! Schedule policies: strategies for resolving executor choice points.
//!
//! Every policy records its decisions into a [`SharedTrace`] —
//! `(candidate count, chosen index)` per choice point, in order — which
//! is what makes a schedule a *first-class artifact*: the trace can be
//! digested (coverage counting), replayed ([`Replay`]), minimized and
//! written to a counterexample file.

use simnet::rng::DetRng;
use simnet::{SchedulePolicy, SimTime, TaskId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Shared record of every resolved choice point: `(number of
/// candidates, chosen index)` per decision. The scenario runner keeps
/// one handle and hands the other to the policy it installs, so the
/// trace survives the policy being moved into the executor.
pub type SharedTrace = Rc<RefCell<Vec<(u32, u32)>>>;

/// Create an empty shared trace.
pub fn new_trace() -> SharedTrace {
    Rc::new(RefCell::new(Vec::new()))
}

fn record(trace: &SharedTrace, n: usize, chosen: usize) {
    trace.borrow_mut().push((n as u32, chosen as u32));
}

/// Uniform random walk over the schedule space: every choice point
/// picks a candidate uniformly at random from a seeded [`DetRng`], so a
/// `(scenario, seed)` pair names one schedule exactly.
pub struct RandomWalk {
    rng: DetRng,
    trace: SharedTrace,
}

impl RandomWalk {
    /// Random-walk policy for `seed`, recording into `trace`.
    pub fn new(seed: u64, trace: SharedTrace) -> Self {
        RandomWalk {
            rng: DetRng::seed_from_u64(seed ^ 0x5EED_5C4E_D01E),
            trace,
        }
    }
}

impl SchedulePolicy for RandomWalk {
    fn choose(&mut self, _now: SimTime, ready: &[TaskId]) -> usize {
        let i = self.rng.next_u64_below(ready.len() as u64) as usize;
        record(&self.trace, ready.len(), i);
        i
    }
}

/// PCT — probabilistic concurrency testing (Burckhardt et al., ASPLOS
/// '10): each task gets a random high priority on first sight, the
/// highest-priority ready task always runs, and at `d - 1` random
/// *priority-change points* (steps of the schedule) the running task is
/// demoted below every initial priority. For a bug of depth `d`, a
/// single run finds it with probability ≥ `1 / (n · k^(d-1))` — far
/// better coverage of rare orderings than a uniform walk of the same
/// budget.
pub struct Pct {
    rng: DetRng,
    /// Larger value = runs first. Initial priorities start at `depth`
    /// so every demotion target (`d - 1 - i`, strictly below `depth`)
    /// outranks nothing.
    priorities: BTreeMap<TaskId, u64>,
    /// Step indices (sorted) at which the chosen task is demoted.
    change_points: Vec<u64>,
    next_change: usize,
    step: u64,
    depth: u32,
    trace: SharedTrace,
}

impl Pct {
    /// PCT policy of depth `depth` (`depth - 1` change points) for a
    /// schedule of roughly `est_len` choice points.
    pub fn new(seed: u64, depth: u32, est_len: u64, trace: SharedTrace) -> Self {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x9C7_0CAFE);
        let mut change_points: Vec<u64> = (1..depth.max(1))
            .map(|_| rng.next_u64_below(est_len.max(1)))
            .collect();
        change_points.sort_unstable();
        Pct {
            rng,
            priorities: BTreeMap::new(),
            change_points,
            next_change: 0,
            step: 0,
            depth,
            trace,
        }
    }
}

impl SchedulePolicy for Pct {
    fn choose(&mut self, _now: SimTime, ready: &[TaskId]) -> usize {
        for &t in ready {
            if !self.priorities.contains_key(&t) {
                let p = self.depth as u64 + 1 + self.rng.next_u64_below(1 << 30);
                self.priorities.insert(t, p);
            }
        }
        // Highest priority wins; FIFO order breaks ties deterministically.
        let mut best = 0usize;
        for (i, t) in ready.iter().enumerate() {
            if self.priorities[t] > self.priorities[&ready[best]] {
                best = i;
            }
        }
        if self.next_change < self.change_points.len()
            && self.step >= self.change_points[self.next_change]
        {
            // Demote the task about to run below all initial priorities;
            // the j-th change point assigns the j-th-lowest value.
            self.priorities.insert(ready[best], self.next_change as u64);
            self.next_change += 1;
        }
        self.step += 1;
        record(&self.trace, ready.len(), best);
        best
    }
}

/// Replay a recorded decision list: the `i`-th choice point takes
/// `decisions[i]` (clamped to the candidate count, so a truncated or
/// divergent tail stays legal); past the end it plays FIFO. Used both
/// to reproduce counterexamples and as the DFS prefix driver.
pub struct Replay {
    decisions: Vec<u32>,
    pos: usize,
    trace: SharedTrace,
}

impl Replay {
    /// Replay `decisions`, recording the actually-taken choices into
    /// `trace`.
    pub fn new(decisions: Vec<u32>, trace: SharedTrace) -> Self {
        Replay {
            decisions,
            pos: 0,
            trace,
        }
    }
}

impl SchedulePolicy for Replay {
    fn choose(&mut self, _now: SimTime, ready: &[TaskId]) -> usize {
        let want = self.decisions.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        let i = want.min(ready.len() - 1);
        record(&self.trace, ready.len(), i);
        i
    }
}

/// Next DFS prefix (preorder) after a run that recorded `trace`, under
/// a preemption bound: a non-zero choice deviates from FIFO and counts
/// as one preemption; prefixes that would exceed `bound` preemptions
/// are pruned. Returns `None` when the bounded schedule space is
/// exhausted.
///
/// Soundness rests on determinism: replaying an unchanged prefix
/// reproduces the same choice points, so incrementing the deepest
/// incrementable decision enumerates schedules without repetition.
pub fn next_dfs_prefix(trace: &[(u32, u32)], bound: u32) -> Option<Vec<u32>> {
    for i in (0..trace.len()).rev() {
        let (n, c) = trace[i];
        if c + 1 < n {
            let used = trace[..i].iter().filter(|&&(_, c)| c != 0).count() as u32;
            if used < bound {
                let mut prefix: Vec<u32> = trace[..i].iter().map(|&(_, c)| c).collect();
                prefix.push(c + 1);
                return Some(prefix);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_prefix_enumeration_respects_bound() {
        // A run with three binary choice points, all FIFO.
        let trace = vec![(2, 0), (2, 0), (2, 0)];
        let p = next_dfs_prefix(&trace, 1).expect("has successor");
        assert_eq!(p, vec![0, 0, 1]);
        // After taking [0, 0, 1], the deepest incrementable position
        // under bound 1 is the middle one.
        let trace2 = vec![(2, 0), (2, 0), (2, 1)];
        let p2 = next_dfs_prefix(&trace2, 1).expect("has successor");
        assert_eq!(p2, vec![0, 1]);
        // Bound 0 admits only the FIFO schedule.
        assert_eq!(next_dfs_prefix(&trace, 0), None);
    }

    #[test]
    fn replay_clamps_out_of_range_choices() {
        let trace = new_trace();
        let mut r = Replay::new(vec![5, 0], trace.clone());
        let a = TaskId::from_u64(0);
        let b = TaskId::from_u64(1);
        let i = r.choose(simnet::SimTime::ZERO, &[a, b]);
        assert_eq!(i, 1); // clamped from 5
        assert_eq!(*trace.borrow(), vec![(2, 1)]);
    }
}
