#![warn(missing_docs)]

//! # telemetry — observability for the simulated NAM cluster
//!
//! Three pieces, all deterministic in virtual time:
//!
//! * [`Registry`] — named counters / gauges / histograms (reusing
//!   [`simnet::stats`]) that any layer can register into, serializable
//!   to CSV/JSON alongside bench results;
//! * causal **op spans** — a [`Telemetry`] observer installed on a
//!   [`rdma_sim::Cluster`] turns the verb-level event stream into
//!   per-operation virtual-time breakdowns (wire, NIC/QP queueing,
//!   server occupancy, lock wait, backoff, stalls, client compute)
//!   whose components sum *exactly* to the op's latency (see
//!   [`span`]);
//! * a **Chrome-trace/Perfetto exporter** — with tracing enabled the
//!   same observer records per-client tracks of op spans, protocol
//!   regions, verb completions, and fault instants; the JSON is
//!   byte-identical across same-seed runs (see [`trace`]).
//!
//! The observer hooks are always compiled into the verb layer but cost
//! one flag check when nothing is installed, so an untelemetered run
//! pays nothing measurable.

pub mod registry;
pub mod span;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rdma_sim::observer::{
    AttemptKind, OpKind, RegionKind, RpcEvent, VerbEvent, VerbKind, VerbObserver,
};
use rdma_sim::Cluster;
use simnet::stats::Counter;
use simnet::SimTime;

pub use registry::{MetricRow, Registry};
pub use span::{Breakdown, Component, OpSpan, COMPONENTS};
pub use trace::{ArgValue, TraceBuf, TraceEvent};

fn verb_label(kind: &VerbKind) -> &'static str {
    match kind {
        VerbKind::Read => "read",
        VerbKind::Write => "write",
        VerbKind::Cas { .. } => "cas",
        VerbKind::Faa { .. } => "faa",
        VerbKind::Alloc => "alloc",
    }
}

#[derive(Default)]
struct ClientState {
    span: Option<OpSpan>,
}

/// The telemetry observer: feeds a [`Registry`] and (optionally) a
/// [`TraceBuf`] from the cluster's verb event stream.
pub struct Telemetry {
    registry: Registry,
    trace: Option<TraceBuf>,
    clients: RefCell<BTreeMap<u64, ClientState>>,
    mismatches: Counter,
}

impl Telemetry {
    /// Metrics-only telemetry (no trace buffer).
    pub fn new(registry: Registry) -> Rc<Self> {
        Rc::new(Telemetry {
            registry,
            trace: None,
            clients: RefCell::new(BTreeMap::new()),
            mismatches: Counter::new(),
        })
    }

    /// Telemetry that additionally records a Chrome trace.
    pub fn with_trace(registry: Registry) -> Rc<Self> {
        Rc::new(Telemetry {
            registry,
            trace: Some(TraceBuf::new()),
            clients: RefCell::new(BTreeMap::new()),
            mismatches: Counter::new(),
        })
    }

    /// Register this observer on `cluster` (alongside any others, e.g.
    /// the protocol sanitizer).
    pub fn install(self: &Rc<Self>, cluster: &Cluster) {
        cluster.add_observer(self.clone());
    }

    /// The registry this observer feeds.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// How many closed spans violated the exact-sum invariant. Zero by
    /// construction; a nonzero value is a telemetry bug.
    pub fn breakdown_mismatches(&self) -> u64 {
        self.mismatches.get()
    }

    /// Render the Chrome-trace JSON (empty array if tracing is off).
    pub fn chrome_trace_json(&self) -> String {
        let clients: Vec<u64> = self.clients.borrow().keys().copied().collect();
        match &self.trace {
            Some(buf) => buf.render(clients.into_iter()),
            None => TraceBuf::new().render(std::iter::empty()),
        }
    }

    /// Write the Chrome-trace JSON to `path` (open with
    /// <https://ui.perfetto.dev> or `chrome://tracing`).
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    fn with_client<R>(&self, client: u64, f: impl FnOnce(&mut ClientState) -> R) -> R {
        let mut clients = self.clients.borrow_mut();
        f(clients.entry(client).or_default())
    }

    fn push_trace(&self, ev: TraceEvent) {
        if let Some(buf) = &self.trace {
            buf.push(ev);
        }
    }
}

impl VerbObserver for Telemetry {
    fn on_verb(&self, ev: &VerbEvent) {
        let label = verb_label(&ev.kind);
        self.registry.add(&format!("verb.{label}.count"), 1);
        self.registry.add("verb.queue_ns", ev.queue_nanos);
        self.with_client(ev.client, |st| {
            if let Some(span) = &mut st.span {
                span.attribute_verb(ev.issued.as_nanos(), ev.time.as_nanos(), ev.queue_nanos, 0);
            }
        });
        self.push_trace(TraceEvent {
            ph: 'X',
            name: label.into(),
            cat: "verb",
            ts_nanos: ev.issued.as_nanos(),
            dur_nanos: Some(ev.time.as_nanos() - ev.issued.as_nanos()),
            tid: ev.client,
            scope: None,
            args: vec![
                ("server", ArgValue::U64(ev.server as u64)),
                ("len", ArgValue::U64(ev.len as u64)),
                ("queue_ns", ArgValue::U64(ev.queue_nanos)),
            ],
        });
    }

    fn on_free(&self, _server: usize, _offset: u64, len: usize, _time: SimTime) {
        self.registry.add("gc.freed_regions", 1);
        self.registry.add("gc.freed_bytes", len as u64);
    }

    fn on_unreachable(&self, _client: u64, _server: usize, _kind: AttemptKind, _time: SimTime) {
        self.registry.add("verb.unreachable.count", 1);
    }

    fn on_rpc(&self, ev: &RpcEvent) {
        self.registry.add("rpc.count", 1);
        self.registry.add("rpc.queue_ns", ev.queue_nanos);
        self.registry.add("rpc.server_ns", ev.server_nanos);
        self.with_client(ev.client, |st| {
            if let Some(span) = &mut st.span {
                span.attribute_verb(
                    ev.issued.as_nanos(),
                    ev.time.as_nanos(),
                    ev.queue_nanos,
                    ev.server_nanos,
                );
            }
        });
        self.push_trace(TraceEvent {
            ph: 'X',
            name: "rpc".into(),
            cat: "verb",
            ts_nanos: ev.issued.as_nanos(),
            dur_nanos: Some(ev.time.as_nanos() - ev.issued.as_nanos()),
            tid: ev.client,
            scope: None,
            args: vec![
                ("server", ArgValue::U64(ev.server as u64)),
                ("queue_ns", ArgValue::U64(ev.queue_nanos)),
                ("server_ns", ArgValue::U64(ev.server_nanos)),
            ],
        });
    }

    fn on_verb_failed(&self, client: u64, server: usize, time: SimTime) {
        self.registry.add("verb.failed.count", 1);
        self.with_client(client, |st| {
            if let Some(span) = &mut st.span {
                span.attribute_failure(time.as_nanos());
            }
        });
        self.push_trace(TraceEvent {
            ph: 'i',
            name: "verb_failed".into(),
            cat: "fault",
            ts_nanos: time.as_nanos(),
            dur_nanos: None,
            tid: client,
            scope: Some('t'),
            args: vec![("server", ArgValue::U64(server as u64))],
        });
    }

    fn on_op_start(&self, client: u64, kind: OpKind, time: SimTime) {
        let outermost = self.with_client(client, |st| match &mut st.span {
            Some(span) => {
                span.depth += 1;
                false
            }
            None => {
                st.span = Some(OpSpan::new(kind, time.as_nanos()));
                true
            }
        });
        if outermost {
            self.push_trace(TraceEvent {
                ph: 'B',
                name: kind.label().into(),
                cat: "op",
                ts_nanos: time.as_nanos(),
                dur_nanos: None,
                tid: client,
                scope: None,
                args: vec![],
            });
        }
    }

    fn on_op_end(&self, client: u64, kind: OpKind, time: SimTime, ok: bool) {
        let closed = self.with_client(client, |st| {
            let Some(span) = &mut st.span else {
                return None;
            };
            span.depth -= 1;
            if span.depth > 0 {
                return None;
            }
            let total = span.close(time.as_nanos());
            let closed = (span.kind, span.breakdown, total);
            st.span = None;
            Some(closed)
        });
        let Some((span_kind, breakdown, total)) = closed else {
            return;
        };
        let label = span_kind.label();
        self.registry.add(&format!("op.{label}.count"), 1);
        if !ok {
            self.registry.add(&format!("op.{label}.errors"), 1);
        }
        self.registry
            .record(&format!("op.{label}.latency_ns"), total);
        for c in COMPONENTS {
            let n = breakdown.get(c);
            if n > 0 {
                self.registry
                    .add(&format!("span.{label}.{}_ns", c.label()), n);
            }
        }
        if breakdown.total() != total {
            self.mismatches.inc();
            self.registry.add("span.mismatches", 1);
        }
        let mut args: Vec<(&'static str, ArgValue)> = vec![("ok", ArgValue::U64(ok as u64))];
        for c in COMPONENTS {
            args.push((c.label(), ArgValue::U64(breakdown.get(c))));
        }
        self.push_trace(TraceEvent {
            ph: 'E',
            name: kind.label().into(),
            cat: "op",
            ts_nanos: time.as_nanos(),
            dur_nanos: None,
            tid: client,
            scope: None,
            args,
        });
    }

    fn on_region(&self, client: u64, kind: RegionKind, enter: bool, time: SimTime) {
        self.with_client(client, |st| {
            if let Some(span) = &mut st.span {
                if enter {
                    // Attribute the gap before the region under the
                    // prevailing state, then open the region.
                    let c = span
                        .region
                        .map(Component::from)
                        .unwrap_or(Component::Compute);
                    span.attribute_all(time.as_nanos(), c);
                    span.region = Some(kind);
                } else {
                    span.attribute_all(time.as_nanos(), kind.into());
                    span.region = None;
                }
            }
        });
        self.push_trace(TraceEvent {
            ph: if enter { 'B' } else { 'E' },
            name: kind.label().into(),
            cat: "region",
            ts_nanos: time.as_nanos(),
            dur_nanos: None,
            tid: client,
            scope: None,
            args: vec![],
        });
    }

    fn on_instant(&self, label: &str, time: SimTime) {
        self.registry.add("fault.instants", 1);
        self.push_trace(TraceEvent {
            ph: 'i',
            name: label.into(),
            cat: "fault",
            ts_nanos: time.as_nanos(),
            dur_nanos: None,
            tid: 0,
            scope: Some('g'),
            args: vec![],
        });
    }
}
