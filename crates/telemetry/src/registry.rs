//! Named metrics registry.
//!
//! A [`Registry`] is a cheap-to-clone handle to a set of named counters,
//! gauges, and histograms (reusing [`simnet::stats`]) that any layer can
//! register into. Names are dot-separated (`verb.read.count`,
//! `op.lookup.latency_ns`); iteration order is the lexicographic name
//! order (a `BTreeMap`), so serialization is deterministic.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use simnet::stats::{Counter, Histogram};

/// Shared handle to a metric set; clones observe the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<Inner>,
}

#[derive(Default)]
struct Inner {
    counters: RefCell<BTreeMap<String, Rc<Counter>>>,
    gauges: RefCell<BTreeMap<String, Rc<Cell<f64>>>>,
    histograms: RefCell<BTreeMap<String, Rc<RefCell<Histogram>>>>,
}

/// One serialized metric value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRow {
    /// Full metric name (histograms expand to `name.count`, `name.mean`,
    /// `name.p50`, `name.p99`, `name.max`).
    pub name: String,
    /// The value, as a double (counters are exact below 2^53).
    pub value: f64,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Rc<Counter> {
        self.inner
            .counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Add `n` to counter `name` (creating it at zero first).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Rc<Cell<f64>> {
        self.inner
            .gauges
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Rc<RefCell<Histogram>> {
        self.inner
            .histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(RefCell::new(Histogram::new())))
            .clone()
    }

    /// Record one sample into histogram `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).borrow_mut().record(value);
    }

    /// Snapshot every metric as `(name, value)` rows in name order.
    pub fn snapshot(&self) -> Vec<MetricRow> {
        let mut rows = Vec::new();
        for (name, c) in self.inner.counters.borrow().iter() {
            rows.push(MetricRow {
                name: name.clone(),
                value: c.get() as f64,
            });
        }
        for (name, g) in self.inner.gauges.borrow().iter() {
            rows.push(MetricRow {
                name: name.clone(),
                value: g.get(),
            });
        }
        for (name, h) in self.inner.histograms.borrow().iter() {
            let h = h.borrow();
            for (suffix, value) in [
                ("count", h.count() as f64),
                ("mean", h.mean()),
                ("p50", h.median() as f64),
                ("p99", h.percentile(0.99) as f64),
                ("max", h.max() as f64),
            ] {
                rows.push(MetricRow {
                    name: format!("{name}.{suffix}"),
                    value,
                });
            }
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Serialize the snapshot as `metric,value` CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for row in self.snapshot() {
            let _ = writeln!(out, "{},{}", row.name, fmt_value(row.value));
        }
        out
    }

    /// Serialize the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, row) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", row.name, fmt_value(row.value));
        }
        out.push('}');
        out
    }
}

/// Render a metric value: integers without a fraction, everything else
/// with enough digits to round-trip deterministically.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a.count").inc();
        r.add("a.count", 2);
        let r2 = r.clone();
        assert_eq!(r2.counter("a.count").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_expands_histograms() {
        let r = Registry::new();
        r.add("z.count", 1);
        r.set_gauge("m.ratio", 0.5);
        for v in [10u64, 20, 30] {
            r.record("a.lat", v);
        }
        let rows = r.snapshot();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "a.lat.count",
                "a.lat.max",
                "a.lat.mean",
                "a.lat.p50",
                "a.lat.p99",
                "m.ratio",
                "z.count"
            ]
        );
        assert!(names.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn csv_and_json_render() {
        let r = Registry::new();
        r.add("ops", 42);
        r.set_gauge("ratio", 0.25);
        assert_eq!(r.to_csv(), "metric,value\nops,42\nratio,0.250000\n");
        assert_eq!(r.to_json(), "{\"ops\":42,\"ratio\":0.250000}");
    }
}
