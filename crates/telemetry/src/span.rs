//! Causal op spans: virtual-time breakdown of one index operation.
//!
//! A span opens at `on_op_start` and closes at `on_op_end`. Between the
//! two, every observer event the client produces advances an
//! *attribution cursor*: the segment `[cursor, event time]` is split
//! among the breakdown components and the cursor moves to the event
//! time. At close, the residue `[cursor, end]` is attributed to client
//! compute. Because every attributed segment is a disjoint slice of
//! `[start, end]` and the split of each segment is clamped to its
//! length, the components sum *exactly* to the op's measured latency —
//! the invariant `Breakdown::total() == end - start` holds by
//! construction and is asserted by the telemetry layer.
//!
//! Attribution rules, in order:
//! 1. While a protocol region (lock wait, backoff) is open, the region
//!    claims every segment whole — time spent spinning on a lock is
//!    lock-wait even though it is physically wire time of the re-read
//!    verbs.
//! 2. Otherwise a verb/RPC completion splits its segment as: time
//!    before the verb was issued → `Compute`; then, of the remainder,
//!    up to the reported NIC/CPU queueing → `NicQueue`, up to the
//!    reported handler occupancy → `Server`, and the rest → `Wire`.
//! 3. A charged verb failure (timeout park, unreachable detection)
//!    attributes its segment to `Stall`.

use rdma_sim::observer::{OpKind, RegionKind};

/// One component of an op's virtual-time breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Wire occupancy + propagation of successful verbs/RPCs.
    Wire,
    /// Waiting behind other traffic: NIC FIFO backlog and RPC-core queues.
    NicQueue,
    /// RPC handler core occupancy (server compute).
    Server,
    /// Spinning on a locked/contended node.
    LockWait,
    /// Exponential backoff between op attempts.
    Backoff,
    /// Failure charges: timeout parks and unreachable-detection round trips.
    Stall,
    /// Client-side compute (everything between verbs).
    Compute,
}

/// All components, in serialization order.
pub const COMPONENTS: [Component; 7] = [
    Component::Wire,
    Component::NicQueue,
    Component::Server,
    Component::LockWait,
    Component::Backoff,
    Component::Stall,
    Component::Compute,
];

impl Component {
    /// Stable snake_case label (used for metric and trace-arg names).
    pub fn label(self) -> &'static str {
        match self {
            Component::Wire => "wire",
            Component::NicQueue => "nic_queue",
            Component::Server => "server",
            Component::LockWait => "lock_wait",
            Component::Backoff => "backoff",
            Component::Stall => "stall",
            Component::Compute => "compute",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::Wire => 0,
            Component::NicQueue => 1,
            Component::Server => 2,
            Component::LockWait => 3,
            Component::Backoff => 4,
            Component::Stall => 5,
            Component::Compute => 6,
        }
    }
}

impl From<RegionKind> for Component {
    fn from(r: RegionKind) -> Self {
        match r {
            RegionKind::LockWait => Component::LockWait,
            RegionKind::Backoff => Component::Backoff,
        }
    }
}

/// Virtual-time breakdown of one op, nanoseconds per component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    nanos: [u64; 7],
}

impl Breakdown {
    /// Add `n` nanoseconds to component `c`.
    pub fn add(&mut self, c: Component, n: u64) {
        self.nanos[c.index()] += n;
    }

    /// Nanoseconds attributed to component `c`.
    pub fn get(&self, c: Component) -> u64 {
        self.nanos[c.index()]
    }

    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

/// One open op span (per client; ops do not overlap within a client).
#[derive(Debug)]
pub struct OpSpan {
    /// What the op is.
    pub kind: OpKind,
    /// Virtual start time, nanoseconds.
    pub start: u64,
    /// Attribution frontier: everything in `[start, cursor)` is already
    /// attributed.
    pub cursor: u64,
    /// Accumulated breakdown.
    pub breakdown: Breakdown,
    /// Open protocol region, if any (rule 1 above).
    pub region: Option<RegionKind>,
    /// Nesting depth of `on_op_start` calls; only the outermost op is
    /// spanned (inner calls are absorbed into the outer breakdown).
    pub depth: u32,
}

impl OpSpan {
    /// Open a span at virtual time `start`.
    pub fn new(kind: OpKind, start: u64) -> Self {
        OpSpan {
            kind,
            start,
            cursor: start,
            breakdown: Breakdown::default(),
            region: None,
            depth: 1,
        }
    }

    /// Attribute `[cursor, time]` wholly to `c` and advance the cursor.
    pub fn attribute_all(&mut self, time: u64, c: Component) {
        if time > self.cursor {
            self.breakdown.add(c, time - self.cursor);
            self.cursor = time;
        }
    }

    /// Attribute `[cursor, time]` for a successful verb/RPC completion
    /// (rules 1–2): `issued` is when the client issued it, `queue` the
    /// reported queueing nanos, `server` the reported handler-occupancy
    /// nanos (zero for one-sided verbs).
    pub fn attribute_verb(&mut self, issued: u64, time: u64, queue: u64, server: u64) {
        if time <= self.cursor {
            return;
        }
        if let Some(r) = self.region {
            self.attribute_all(time, r.into());
            return;
        }
        let seg = time - self.cursor;
        let pre = issued.saturating_sub(self.cursor).min(seg);
        let mut rest = seg - pre;
        self.breakdown.add(Component::Compute, pre);
        let q = queue.min(rest);
        rest -= q;
        self.breakdown.add(Component::NicQueue, q);
        let sv = server.min(rest);
        rest -= sv;
        self.breakdown.add(Component::Server, sv);
        self.breakdown.add(Component::Wire, rest);
        self.cursor = time;
    }

    /// Attribute `[cursor, time]` for a charged failure (rule 3).
    pub fn attribute_failure(&mut self, time: u64) {
        let c = self.region.map(Component::from).unwrap_or(Component::Stall);
        self.attribute_all(time, c);
    }

    /// Close the span at `time`: attribute the residue to compute (or
    /// the open region, defensively) and return the total latency.
    pub fn close(&mut self, time: u64) -> u64 {
        let c = self
            .region
            .map(Component::from)
            .unwrap_or(Component::Compute);
        self.attribute_all(time, c);
        time - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_exactly_by_construction() {
        let mut s = OpSpan::new(OpKind::Lookup, 100);
        // Verb issued at 120 (20ns compute), queued 30ns, completes at 200.
        s.attribute_verb(120, 200, 30, 0);
        assert_eq!(s.breakdown.get(Component::Compute), 20);
        assert_eq!(s.breakdown.get(Component::NicQueue), 30);
        assert_eq!(s.breakdown.get(Component::Wire), 50);
        // Lock-wait region claims everything inside it.
        s.region = Some(RegionKind::LockWait);
        s.attribute_verb(210, 400, 500, 0); // queue larger than segment
        assert_eq!(s.breakdown.get(Component::LockWait), 200);
        s.region = None;
        // Failure charge.
        s.attribute_failure(450);
        assert_eq!(s.breakdown.get(Component::Stall), 50);
        let total = s.close(500);
        assert_eq!(total, 400);
        assert_eq!(s.breakdown.total(), total);
        assert_eq!(s.breakdown.get(Component::Compute), 20 + 50);
    }

    #[test]
    fn clamps_overreported_queue_and_server() {
        let mut s = OpSpan::new(OpKind::Insert, 0);
        // Segment of 10ns but queue+server report 100ns: clamp, never
        // exceed the segment.
        s.attribute_verb(0, 10, 60, 40);
        assert_eq!(s.breakdown.total(), 10);
        assert_eq!(s.breakdown.get(Component::NicQueue), 10);
        assert_eq!(s.breakdown.get(Component::Server), 0);
    }

    #[test]
    fn stale_event_is_a_no_op() {
        let mut s = OpSpan::new(OpKind::Range, 50);
        s.attribute_verb(0, 40, 5, 0); // completion before span start
        assert_eq!(s.breakdown.total(), 0);
        assert_eq!(s.cursor, 50);
    }
}
