//! Chrome-trace (Perfetto-loadable) JSON event buffer.
//!
//! Events are appended in simulation callback order — which is
//! deterministic per seed — and rendered one JSON object per line
//! inside a top-level array, so two same-seed runs produce
//! byte-identical files and validators can work line-by-line.
//! Timestamps are virtual time: nanoseconds rendered as fractional
//! microseconds (the unit Perfetto/chrome://tracing expect).

use std::cell::RefCell;
use std::fmt::Write as _;

/// One trace-event argument value.
#[derive(Clone, Debug)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// String argument (escaped at render time).
    Str(String),
}

/// One Chrome trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Phase: `B`/`E` duration, `X` complete, `i` instant, `M` metadata.
    pub ph: char,
    /// Event name.
    pub name: String,
    /// Category (`op`, `region`, `verb`, `fault`, `__metadata`).
    pub cat: &'static str,
    /// Virtual timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// Duration in nanoseconds (`X` events only).
    pub dur_nanos: Option<u64>,
    /// Track: the client id (0 for cluster-scoped events).
    pub tid: u64,
    /// Instant scope (`i` events): `g` global, `t` thread.
    pub scope: Option<char>,
    /// Arguments, rendered in given order.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Append-only buffer of trace events.
#[derive(Default)]
pub struct TraceBuf {
    events: RefCell<Vec<TraceEvent>>,
}

impl TraceBuf {
    /// Create an empty buffer.
    pub fn new() -> Self {
        TraceBuf::default()
    }

    /// Append one event.
    pub fn push(&self, ev: TraceEvent) {
        self.events.borrow_mut().push(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Render the full Chrome-trace JSON array: metadata first (process
    /// name, one thread name per client in `clients`), then the buffered
    /// events in append order, one object per line.
    pub fn render(&self, clients: impl Iterator<Item = u64>) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push(
            "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0.000,\
             \"pid\":0,\"tid\":0,\"args\":{\"name\":\"namdex-sim\"}}"
                .to_string(),
        );
        for c in clients {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0.000,\
                 \"pid\":0,\"tid\":{c},\"args\":{{\"name\":\"client {c}\"}}}}"
            ));
        }
        for ev in self.events.borrow().iter() {
            lines.push(render_event(ev));
        }
        let mut out = String::from("[\n");
        for (i, line) in lines.iter().enumerate() {
            out.push_str(line);
            if i + 1 < lines.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

/// Nanoseconds as a fractional-microsecond JSON number (`123.456`).
fn fmt_us(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_event(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}",
        escape(&ev.name),
        ev.cat,
        ev.ph,
        fmt_us(ev.ts_nanos)
    );
    if let Some(dur) = ev.dur_nanos {
        let _ = write!(out, ",\"dur\":{}", fmt_us(dur));
    }
    let _ = write!(out, ",\"pid\":0,\"tid\":{}", ev.tid);
    if let Some(scope) = ev.scope {
        let _ = write!(out, ",\"s\":\"{scope}\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match value {
                ArgValue::U64(v) => {
                    let _ = write!(out, "\"{key}\":{v}");
                }
                ArgValue::Str(s) => {
                    let _ = write!(out, "\"{key}\":\"{}\"", escape(s));
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_one_event_per_line() {
        let buf = TraceBuf::new();
        buf.push(TraceEvent {
            ph: 'B',
            name: "lookup".into(),
            cat: "op",
            ts_nanos: 1_234_567,
            dur_nanos: None,
            tid: 3,
            scope: None,
            args: vec![],
        });
        buf.push(TraceEvent {
            ph: 'E',
            name: "lookup".into(),
            cat: "op",
            ts_nanos: 2_000_001,
            dur_nanos: None,
            tid: 3,
            scope: None,
            args: vec![("ok", ArgValue::U64(1))],
        });
        let json = buf.render([3u64].into_iter());
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.first(), Some(&"["));
        assert_eq!(lines.last(), Some(&"]"));
        // metadata (process + thread) + 2 events.
        assert_eq!(lines.len(), 2 + 4);
        assert!(lines[3].contains("\"ts\":1234.567"));
        assert!(lines[4].contains("\"args\":{\"ok\":1}"));
        assert!(lines[3].ends_with(','));
        assert!(!lines[4].ends_with(','));
    }

    #[test]
    fn escapes_labels() {
        let buf = TraceBuf::new();
        buf.push(TraceEvent {
            ph: 'i',
            name: "a\"b\\c".into(),
            cat: "fault",
            ts_nanos: 0,
            dur_nanos: None,
            tid: 0,
            scope: Some('g'),
            args: vec![],
        });
        let json = buf.render(std::iter::empty());
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("\"s\":\"g\""));
    }
}
