//! Integration test for the exact-sum span invariant: under injected
//! faults (server crash + restart, client kill + revival) and the retry
//! traffic they provoke, every closed op span's component breakdown
//! still sums exactly to the op's latency — [`Telemetry`] checks the
//! invariant at close time and `breakdown_mismatches()` counts
//! violations.

use chaos::{ChaosController, FaultPlan};
use nam::{NamCluster, PartitionMap};
use namdex_core::{Design, FgConfig, Hybrid};
use rdma_sim::{ClusterSpec, Endpoint};
use simnet::rng::DetRng;
use simnet::{Sim, SimDur, SimTime};
use std::rc::Rc;
use telemetry::{Registry, Telemetry};

const KEYS: u64 = 4_000;
const CLIENTS: usize = 4;

fn run_with_faults() -> (Rc<Telemetry>, u64) {
    let sim = Sim::new();
    let nam = NamCluster::new(&sim, ClusterSpec::default());
    nam.rdma.set_active_clients(CLIENTS);

    let tel = Telemetry::with_trace(Registry::new());
    tel.install(&nam.rdma);

    let partition = PartitionMap::range_uniform(nam.num_servers(), KEYS * 8);
    // The `Design` wrapper is the op-span (and retry) layer: spans open
    // at `note_op_start` and close at `note_op_end`, retries included.
    let index = Design::Hybrid(Hybrid::build(
        &nam,
        FgConfig::default(),
        partition,
        (0..KEYS).map(|i| (i * 8, i)),
    ));

    // One fault of each flavour inside the run, so spans close across
    // verb failures, cancellations, and post-restart retries.
    let plan = FaultPlan::with_seed(7)
        .crash_server(SimTime::from_millis(1), 1)
        .restart_server(SimTime::from_millis(2), 1)
        .kill_client(SimTime::from_micros(2_500), 2)
        .revive_client(SimTime::from_millis(3), 2);
    ChaosController::install_nam(&sim, &nam, plan);

    let aborts = Rc::new(simnet::stats::Counter::new());
    for c in 0..CLIENTS {
        let index = index.clone();
        let ep = Endpoint::new(&nam.rdma);
        let cluster = nam.rdma.clone();
        let sim_c = sim.clone();
        let aborts = aborts.clone();
        let mut rng = DetRng::seed_from_u64(1_000 + c as u64);
        sim.spawn(async move {
            loop {
                let key = rng.next_u64_below(KEYS) * 8;
                let res = if rng.next_u64_below(2) == 0 {
                    index.lookup(&ep, key).await.map(|_| ())
                } else {
                    index.insert(&ep, key, key).await.map(|_| ())
                };
                if let Err(e) = res {
                    aborts.inc();
                    // A killed client parks until revival instead of
                    // spinning on `Cancelled` at a frozen instant.
                    if e.is_cancelled() {
                        while cluster.client_dead(ep.client_id()) {
                            sim_c.sleep(SimDur::from_micros(10)).await;
                        }
                    }
                }
            }
        });
    }
    sim.run_until(SimTime::from_millis(5));
    (tel, aborts.get())
}

#[test]
fn span_breakdowns_sum_exactly_under_faults() {
    let (tel, aborts) = run_with_faults();
    let reg = tel.registry();

    // The fault schedule actually bit: ops aborted and verbs failed.
    let lookups = reg.counter("op.lookup.count").get();
    let inserts = reg.counter("op.insert.count").get();
    assert!(
        lookups > 0 && inserts > 0,
        "workload ran: {lookups}/{inserts}"
    );
    assert!(aborts > 0, "fault schedule produced no aborted ops");
    let failed =
        reg.counter("verb.failed.count").get() + reg.counter("verb.unreachable.count").get();
    assert!(failed > 0, "fault schedule produced no failed verbs");

    // The invariant under test: every closed span's breakdown summed
    // exactly to its latency, fault paths included.
    assert_eq!(
        tel.breakdown_mismatches(),
        0,
        "span component sums diverged from op latency"
    );
    assert_eq!(reg.counter("span.mismatches").get(), 0);

    // And the trace carries matched op spans plus fault instants.
    let trace = tel.chrome_trace_json();
    assert!(trace.contains("\"ph\":\"B\"") && trace.contains("\"ph\":\"E\""));
    assert!(trace.contains("crash_server(1)"));
    assert!(trace.contains("kill_client(2)"));
}
