#![warn(missing_docs)]

//! # learned-index — a PGM-style piecewise-linear index over remote leaves
//!
//! The routing model of the fourth design family (`namdex_core::learned`):
//! a [Piecewise Geometric Model](https://pgm.di.unipi.it/) trained over
//! the leaf-level `high_key → remote pointer` table of a distributed
//! B-link tree, so a client can map a key to its candidate leaf with
//! **zero** network verbs and read it with a single one-sided READ — the
//! communication-efficiency move of Outback and DEX.
//!
//! ## Structure
//!
//! The model is the classic recursive PGM:
//!
//! * the **leaf table** — every real leaf's `(high_key, remote ptr)` in
//!   key order, with the rightmost leaf registered under `KEY_MAX`;
//! * **level 0 segments** — a greedy shrinking-cone pass fits linear
//!   segments `pos ≈ slope·(key − first_key) + intercept` over the
//!   table's `(high_key, position)` points with error bounded by ε;
//! * **upper levels** — the same fit repeated over each level's segment
//!   `first_key`s until one level has at most `fanout` segments.
//!
//! A query descends the segment levels (pure in-memory arithmetic),
//! lands within ε of the true table position, and finishes with a
//! bounded binary search. The search window self-repairs: if the true
//! position falls outside the ε-window (which cannot happen right after
//! training, but keeps correctness independent of float rounding), the
//! window widens geometrically before the final binary search — still
//! zero verbs.
//!
//! ## Staleness contract
//!
//! The consumer keeps using a model after the tree has changed. That is
//! safe by the B-link invariants the tree upholds (splits move keys
//! *right*, leaves are never merged or reused): a split leaf keeps its
//! pointer and shrinks its high key, so a stale table entry routes a
//! descent to the covering leaf **or one left of it** — never right —
//! and the reader corrects with the ordinary sibling chase. The model
//! must therefore answer the *ceiling* query (leftmost table entry with
//! `high_key ≥ key`), which [`PgmModel::predict`] implements.

use blink::{Key, KEY_MAX};
use rdma_sim::RemotePtr;

/// One linear segment of the model: for keys at/after `first_key`,
/// position ≈ `slope · (key − first_key) + intercept`, within ±ε of the
/// training points it covers.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// First training key this segment covers.
    pub first_key: Key,
    /// Positions per key unit.
    pub slope: f64,
    /// Position of `first_key`.
    pub intercept: f64,
}

impl Segment {
    /// Predicted (unclamped) position of `key` under this segment.
    fn predict(&self, key: Key) -> f64 {
        // Keys are u64-wide; the subtraction stays exact and the f64
        // rounding error is absorbed by the ε-window + widening search.
        let dx = key.saturating_sub(self.first_key) as f64;
        self.slope * dx + self.intercept
    }
}

/// Fit segments over `(key, index)` points with the greedy shrinking
/// cone: keep the interval of slopes consistent with every point of the
/// current segment within ±ε; when a point empties the interval, close
/// the segment at the midpoint slope and start a new one there.
fn fit_level(keys: &[Key], epsilon: u32) -> Vec<Segment> {
    let eps = epsilon.max(1) as f64;
    let mut out = Vec::new();
    let mut start = 0usize;
    let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
    for (i, &k) in keys.iter().enumerate().skip(1) {
        let dx = k.saturating_sub(keys[start]) as f64;
        let dy = (i - start) as f64;
        // Duplicate keys cannot appear (high keys are strictly
        // increasing); dx > 0 holds for every point after `start`.
        let (nlo, nhi) = ((dy - eps) / dx, (dy + eps) / dx);
        let (clo, chi) = (lo.max(nlo), hi.min(nhi));
        if clo <= chi {
            (lo, hi) = (clo, chi);
        } else {
            out.push(close_segment(keys[start], start, lo, hi));
            start = i;
            (lo, hi) = (f64::NEG_INFINITY, f64::INFINITY);
        }
    }
    out.push(close_segment(keys[start], start, lo, hi));
    out
}

fn close_segment(first_key: Key, start: usize, lo: f64, hi: f64) -> Segment {
    // A single-point segment has an unconstrained cone; any slope is
    // consistent, 0 keeps predictions at the intercept.
    let slope = if lo.is_finite() && hi.is_finite() {
        (lo + hi) * 0.5
    } else {
        0.0
    };
    Segment {
        first_key,
        slope,
        intercept: start as f64,
    }
}

/// In `arr` (sorted ascending under `key_of`, whose last entry satisfies
/// `key_of(last) >= k`), find the leftmost index with `key_of(i) >= k`.
/// Starts from the ε-window around `hint` and widens geometrically if
/// the true position lies outside, then binary-searches the window.
fn search_ceiling<T>(
    arr: &[T],
    k: Key,
    hint: usize,
    eps: usize,
    key_of: impl Fn(&T) -> Key,
) -> usize {
    let n = arr.len();
    let mut lo = hint.min(n - 1).saturating_sub(eps + 1);
    let mut hi = (hint + eps + 1).min(n - 1);
    let mut step = eps + 2;
    // The answer may be left of the window: widen while the left edge
    // itself still satisfies the predicate (so a strictly-smaller key,
    // or position 0, bounds the search).
    while lo > 0 && arr.get(lo).map(&key_of) >= Some(k) {
        lo = lo.saturating_sub(step);
        step = step.saturating_mul(2);
    }
    step = eps + 2;
    // The answer may be right of the window: widen while the right edge
    // fails the predicate (the KEY_MAX sentinel stops this at n − 1).
    while hi + 1 < n && arr.get(hi).map(&key_of) < Some(k) {
        hi = (hi + step).min(n - 1);
        step = step.saturating_mul(2);
    }
    match arr.get(lo..=hi) {
        Some(window) => lo + window.partition_point(|e| key_of(e) < k),
        None => n - 1,
    }
}

/// Model statistics for reports and telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelInfo {
    /// Leaf-table entries (= leaves at training time).
    pub leaves: usize,
    /// Total linear segments across all levels.
    pub segments: usize,
    /// Segment levels above the table.
    pub levels: usize,
    /// Approximate in-memory size of the shipped model in bytes.
    pub bytes: usize,
}

/// The trained model: recursive linear segments plus the leaf table they
/// index. Immutable once trained — retraining builds a fresh model, so a
/// consumer can swap it atomically behind an `Rc`.
#[derive(Clone, Debug)]
pub struct PgmModel {
    epsilon: u32,
    /// `levels[0]` indexes the table; `levels[k]` indexes `levels[k−1]`.
    levels: Vec<Vec<Segment>>,
    /// `(high_key, remote ptr raw)` per leaf, ascending, last = KEY_MAX.
    table: Vec<(Key, u64)>,
}

impl PgmModel {
    /// Train over the leaf-level `(high_key, ptr raw)` mapping, sorted
    /// ascending by high key with the rightmost leaf under [`KEY_MAX`].
    /// `epsilon` bounds the per-level prediction error (≥ 1); `fanout`
    /// bounds the top level's segment count (≥ 2).
    pub fn train(table: Vec<(Key, u64)>, epsilon: u32, fanout: usize) -> Self {
        assert!(!table.is_empty(), "cannot train over an empty leaf table");
        assert!(
            table.windows(2).all(|w| w[0].0 < w[1].0),
            "leaf table must be strictly ascending by high key"
        );
        assert_eq!(
            table.last().map(|e| e.0),
            Some(KEY_MAX),
            "rightmost leaf must be registered under KEY_MAX"
        );
        let fanout = fanout.max(2);
        let mut levels = Vec::new();
        let mut keys: Vec<Key> = table.iter().map(|e| e.0).collect();
        loop {
            let segs = fit_level(&keys, epsilon);
            let done = segs.len() <= fanout;
            keys = segs.iter().map(|s| s.first_key).collect();
            levels.push(segs);
            if done {
                break;
            }
        }
        PgmModel {
            epsilon,
            levels,
            table,
        }
    }

    /// The error bound the model was trained with.
    pub fn epsilon(&self) -> u32 {
        self.epsilon
    }

    /// Candidate leaf for `key`: the pointer of the leftmost table entry
    /// with `high_key >= key` (the covering leaf at training time; at or
    /// left of it after concurrent splits — see the staleness contract).
    pub fn predict(&self, key: Key) -> RemotePtr {
        let pos = self.predict_pos(key);
        match self.table.get(pos) {
            Some(&(_, raw)) => RemotePtr::from_raw(raw),
            None => RemotePtr::NULL, // unreachable: pos < table.len()
        }
    }

    /// Table position [`PgmModel::predict`] resolves to (exposed for
    /// tests and the sanitizer's model audit).
    pub fn predict_pos(&self, key: Key) -> usize {
        let eps = self.epsilon as usize;
        // Top level is at most `fanout` segments: search it exactly.
        let mut hint = 0usize;
        for (depth, level) in self.levels.iter().enumerate().rev() {
            // Rightmost segment with first_key <= key; the ceiling search
            // returns the leftmost >= key, one past it unless exact.
            let at = if depth + 1 == self.levels.len() {
                level.partition_point(|s| s.first_key <= key)
            } else {
                let c = search_ceiling(level, key, hint, eps, |s| s.first_key);
                match level.get(c).map(|s| s.first_key) {
                    Some(f) if f <= key => c + 1,
                    _ => c,
                }
            };
            let seg = match level.get(at.saturating_sub(1)) {
                Some(s) => s,
                None => return 0, // unreachable: levels are non-empty
            };
            let p = seg.predict(key);
            hint = if p.is_finite() && p > 0.0 {
                p.round() as usize
            } else {
                0
            };
        }
        search_ceiling(&self.table, key, hint, eps, |e| e.0)
    }

    /// The `(high_key, ptr raw)` table the model routes into.
    pub fn table(&self) -> &[(Key, u64)] {
        &self.table
    }

    /// Size/shape statistics.
    pub fn info(&self) -> ModelInfo {
        let segments = self.levels.iter().map(Vec::len).sum();
        ModelInfo {
            leaves: self.table.len(),
            segments,
            levels: self.levels.len(),
            bytes: self.table.len() * 16 + segments * 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// A sorted table with the KEY_MAX sentinel, keys `f(i)`.
    fn table_of(n: u64, f: impl Fn(u64) -> Key) -> Vec<(Key, u64)> {
        let mut t: Vec<(Key, u64)> = (0..n - 1).map(|i| (f(i), 1000 + i)).collect();
        t.push((KEY_MAX, 1000 + n - 1));
        t
    }

    fn check_exact(model: &PgmModel) {
        // Every key in every leaf's covered range must resolve to that
        // leaf's table position.
        let table = model.table();
        let mut lo = 0u64;
        for (pos, &(high, _)) in table.iter().enumerate() {
            for k in [lo, lo + (high - lo) / 2, high] {
                assert_eq!(
                    model.predict_pos(k),
                    pos,
                    "key {k} must land on leaf {pos} (high {high})"
                );
            }
            lo = high.saturating_add(1);
        }
    }

    #[test]
    fn exact_on_linear_keys() {
        let model = PgmModel::train(table_of(500, |i| i * 64 + 63), 8, 16);
        check_exact(&model);
        assert!(model.info().segments < 20, "linear keys need few segments");
    }

    #[test]
    fn exact_on_skewed_keys() {
        // Piecewise density change: tight cluster then sparse tail.
        let f = |i: u64| {
            if i < 300 {
                i * 3 + 2
            } else {
                1000 + (i - 300) * 997
            }
        };
        let model = PgmModel::train(table_of(400, f), 4, 8);
        check_exact(&model);
    }

    #[test]
    fn exact_on_random_keys() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut keys: Vec<Key> = (0..2000)
            .map(|_| rng.random_range(0..u64::MAX / 2))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let n = keys.len();
        let mut table: Vec<(Key, u64)> = keys.into_iter().zip(0u64..).collect();
        table.push((KEY_MAX, n as u64));
        let model = PgmModel::train(table, 16, 32);
        check_exact(&model);
    }

    #[test]
    fn recursion_bounds_top_level() {
        let model = PgmModel::train(table_of(5000, |i| i * 17 + (i % 7)), 2, 4);
        let info = model.info();
        assert!(info.levels >= 1);
        assert!(
            model.levels.last().map(Vec::len).unwrap_or(0) <= 4,
            "top level must respect fanout"
        );
        check_exact(&model);
    }

    #[test]
    fn single_leaf_table() {
        let model = PgmModel::train(vec![(KEY_MAX, 42)], 8, 16);
        assert_eq!(model.predict(0).raw(), 42);
        assert_eq!(model.predict(KEY_MAX).raw(), 42);
    }

    #[test]
    fn ceiling_semantics_route_left_of_stale_split() {
        // Leaves with highs 100, 200, MAX; a key in (100, 200] must hit
        // position 1 — and a key past a (simulated) stale high still
        // lands at-or-left thanks to ceiling semantics.
        let model = PgmModel::train(vec![(100, 1), (200, 2), (KEY_MAX, 3)], 1, 4);
        assert_eq!(model.predict(100).raw(), 1);
        assert_eq!(model.predict(101).raw(), 2);
        assert_eq!(model.predict(200).raw(), 2);
        assert_eq!(model.predict(201).raw(), 3);
    }

    #[test]
    fn info_counts_model_size() {
        let model = PgmModel::train(table_of(1000, |i| i * 8), 8, 16);
        let info = model.info();
        assert_eq!(info.leaves, 1000);
        assert!(info.segments >= 1);
        assert_eq!(info.bytes, info.leaves * 16 + info.segments * 24);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_table_rejected() {
        PgmModel::train(vec![(5, 0), (3, 1), (KEY_MAX, 2)], 8, 16);
    }

    #[test]
    #[should_panic(expected = "KEY_MAX")]
    fn missing_sentinel_rejected() {
        PgmModel::train(vec![(5, 0), (9, 1)], 8, 16);
    }
}
