#![warn(missing_docs)]

//! # chaos — deterministic fault injection for the simulated NAM cluster
//!
//! A [`FaultPlan`] is a seed-deterministic schedule of fault events —
//! client kills/revivals, memory-server crashes/restarts, link
//! degradation windows, and armed kill-on-lock-acquire triggers. Plans
//! are either *scripted* (explicit `(time, event)` pairs) or
//! *randomized* (a [`RandomProfile`] materialized up-front from a seed
//! via [`simnet::rng::DetRng`]); either way the schedule is fully
//! decided before the simulation runs, so the same seed always produces
//! the same fault sequence at the same virtual instants — no wall clock
//! anywhere.
//!
//! [`ChaosController::install`] arms the plan on a cluster: a driver
//! task sleeps to each event's instant and applies it through the
//! cluster's fault API (`kill_client`, `fail_server`, `degrade_link`,
//! ...). [`ChaosController::install_nam`] additionally bumps the NAM
//! catalog generation whenever a memory server finishes recovering —
//! the same instant as the restart under `Durability::Off`, after
//! checkpoint + log replay under `Durability::Wal` — so compute servers
//! holding cached descriptors know to re-resolve (§4.2's catalog
//! service is the natural recovery coordination point).
//!
//! Recovery *policy* lives elsewhere: the verb layer surfaces failures
//! as `rdma_sim::VerbError`, `namdex-core::Design` retries with bounded
//! backoff, and the lease encoding in `blink::layout::lock_word` lets a
//! contender break locks orphaned by killed clients.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nam::NamCluster;
use rdma_sim::Cluster;
pub use rdma_sim::LinkDegrade;
use simnet::rng::DetRng;
use simnet::{Sim, SimDur, SimTime};

/// One fault to apply at a scheduled virtual instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Kill compute client `0`'s endpoint: every verb it issues from now
    /// on fails with `VerbError::Cancelled`. Verbs already in flight
    /// still take effect remotely (the NIC does not recall messages) —
    /// which is exactly how a client dies between its lock CAS and its
    /// unlock FAA.
    KillClient(u64),
    /// Revive a killed client; its worker may resume issuing verbs.
    ReviveClient(u64),
    /// Crash a memory server: its registered regions are unreachable
    /// (verbs fail with `VerbError::ServerUnreachable`) until restart.
    CrashServer(usize),
    /// Restart a crashed server. What survives depends on the cluster's
    /// `Durability` mode: under `Off` memory contents magically survive
    /// and the server is healthy the same instant; under `Wal` the crash
    /// wiped RAM, so the restart boots, streams the latest checkpoint
    /// plus log tail from the server's simulated NVMe device, replays,
    /// and only then reports healthy. Either way the restart bumps the
    /// server's restart counter and, under
    /// [`ChaosController::install_nam`], the catalog generation — at
    /// recovery *completion*, not at the restart command.
    RestartServer(usize),
    /// Begin a degradation window on one server's link: probabilistic
    /// verb drops, added delay, and/or reduced NIC bandwidth.
    DegradeLink(usize, LinkDegrade),
    /// End the degradation window on a server's link.
    RestoreLink(usize),
    /// Arm a one-shot trigger: the client dies at the exact instant its
    /// next lock-acquire CAS succeeds — *between* the CAS and the unlock
    /// FAA, the worst instant for lock-based protocols.
    KillOnNextLockAcquire(u64),
}

/// Profile for randomized plan generation: how many faults of each
/// class to scatter over the horizon.
#[derive(Clone, Copy, Debug)]
pub struct RandomProfile {
    /// Events are scheduled in `[0, horizon)` (recovery counterparts may
    /// land past the horizon).
    pub horizon: SimDur,
    /// Crash/restart pairs to schedule on random servers.
    pub server_crashes: u32,
    /// Downtime between each crash and its restart.
    pub server_downtime: SimDur,
    /// Kill/revive pairs to schedule on random clients.
    pub client_kills: u32,
    /// Downtime between each kill and its revival.
    pub client_downtime: SimDur,
    /// Degrade/restore pairs to schedule on random links.
    pub degrade_spikes: u32,
    /// Degradation applied during each spike.
    pub degrade: LinkDegrade,
    /// Length of each degradation window.
    pub degrade_duration: SimDur,
}

impl Default for RandomProfile {
    fn default() -> Self {
        RandomProfile {
            horizon: SimDur::from_millis(20),
            server_crashes: 1,
            server_downtime: SimDur::from_millis(2),
            client_kills: 2,
            client_downtime: SimDur::from_millis(1),
            degrade_spikes: 1,
            degrade: LinkDegrade {
                drop_chance: 0.05,
                extra_delay: SimDur::from_micros(10),
                bandwidth_factor: 0.5,
            },
            degrade_duration: SimDur::from_millis(2),
        }
    }
}

/// A seed-deterministic schedule of fault events.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
    seed: u64,
}

impl FaultPlan {
    /// Empty plan (no faults). Installing it still seeds the cluster's
    /// fault RNG with `seed` 0 for drop rolls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty plan whose link-degradation drop rolls draw from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    /// Schedule `event` at virtual instant `at`.
    pub fn at(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }

    /// Schedule a client kill.
    pub fn kill_client(self, at: SimTime, client: u64) -> Self {
        self.at(at, FaultEvent::KillClient(client))
    }

    /// Schedule a client revival.
    pub fn revive_client(self, at: SimTime, client: u64) -> Self {
        self.at(at, FaultEvent::ReviveClient(client))
    }

    /// Schedule a memory-server crash.
    pub fn crash_server(self, at: SimTime, server: usize) -> Self {
        self.at(at, FaultEvent::CrashServer(server))
    }

    /// Schedule a memory-server restart.
    pub fn restart_server(self, at: SimTime, server: usize) -> Self {
        self.at(at, FaultEvent::RestartServer(server))
    }

    /// Schedule the start of a link-degradation window.
    pub fn degrade_link(self, at: SimTime, server: usize, degrade: LinkDegrade) -> Self {
        self.at(at, FaultEvent::DegradeLink(server, degrade))
    }

    /// Schedule the end of a link-degradation window.
    pub fn restore_link(self, at: SimTime, server: usize) -> Self {
        self.at(at, FaultEvent::RestoreLink(server))
    }

    /// Arm the kill-on-next-lock-acquire trigger for `client` at `at`.
    pub fn kill_on_lock_acquire(self, at: SimTime, client: u64) -> Self {
        self.at(at, FaultEvent::KillOnNextLockAcquire(client))
    }

    /// Generate a randomized plan: fault times and targets are drawn
    /// from a [`DetRng`] seeded with `seed`, so the schedule is a pure
    /// function of `(seed, servers, clients, profile)`. The whole
    /// schedule is materialized here, before any simulation runs.
    pub fn randomized(seed: u64, servers: usize, clients: u64, profile: RandomProfile) -> Self {
        assert!(servers > 0, "randomized plan needs at least one server");
        let mut rng = DetRng::seed_from_u64(seed);
        let horizon = profile.horizon.as_nanos().max(1);
        let mut plan = FaultPlan::with_seed(seed);
        for _ in 0..profile.server_crashes {
            let t = SimTime::from_nanos(rng.next_u64_below(horizon));
            let s = rng.next_u64_below(servers as u64) as usize;
            plan = plan
                .crash_server(t, s)
                .restart_server(t + profile.server_downtime, s);
        }
        if clients > 0 {
            for _ in 0..profile.client_kills {
                let t = SimTime::from_nanos(rng.next_u64_below(horizon));
                let c = rng.next_u64_below(clients);
                plan = plan
                    .kill_client(t, c)
                    .revive_client(t + profile.client_downtime, c);
            }
        }
        for _ in 0..profile.degrade_spikes {
            let t = SimTime::from_nanos(rng.next_u64_below(horizon));
            let s = rng.next_u64_below(servers as u64) as usize;
            plan = plan
                .degrade_link(t, s, profile.degrade)
                .restore_link(t + profile.degrade_duration, s);
        }
        plan
    }

    /// The scheduled events, unsorted (installation sorts them stably by
    /// time, preserving insertion order within an instant).
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// The seed the cluster's fault RNG (drop rolls) is set to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Counters of plan execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Events applied so far.
    pub events_applied: u64,
    /// Recovery events (restarts + revivals) among them.
    pub recoveries: u64,
}

type EventHook = Box<dyn Fn(&FaultEvent)>;

/// Stable label for a fault event, used for trace instants.
fn fault_label(ev: &FaultEvent) -> String {
    match *ev {
        FaultEvent::KillClient(c) => format!("kill_client({c})"),
        FaultEvent::ReviveClient(c) => format!("revive_client({c})"),
        FaultEvent::CrashServer(s) => format!("crash_server({s})"),
        FaultEvent::RestartServer(s) => format!("restart_server({s})"),
        FaultEvent::DegradeLink(s, _) => format!("degrade_link({s})"),
        FaultEvent::RestoreLink(s) => format!("restore_link({s})"),
        FaultEvent::KillOnNextLockAcquire(c) => format!("arm_lock_kill({c})"),
    }
}

struct ControllerState {
    stats: Cell<ChaosStats>,
    done: Cell<bool>,
    hooks: RefCell<Vec<EventHook>>,
}

/// Drives a [`FaultPlan`] against a cluster from inside the simulation.
#[derive(Clone)]
pub struct ChaosController {
    cluster: Cluster,
    state: Rc<ControllerState>,
}

impl ChaosController {
    /// Install `plan` on `cluster`: seed the fault RNG and spawn the
    /// driver task that applies each event at its instant.
    pub fn install(sim: &Sim, cluster: &Cluster, plan: FaultPlan) -> Self {
        Self::install_inner(sim, cluster, plan)
    }

    /// Install `plan` on a NAM deployment. A memory server finishing
    /// recovery additionally bumps the catalog generation, signalling
    /// compute servers to re-resolve cached descriptors. The bump rides
    /// the cluster's recovered hook, so under `Durability::Wal` it fires
    /// only once replay completes and the server is actually healthy.
    pub fn install_nam(sim: &Sim, nam: &NamCluster, plan: FaultPlan) -> Self {
        let generation = nam.catalog.generation_handle();
        nam.rdma
            .add_recovered_hook(move |_server| generation.set(generation.get() + 1));
        Self::install_inner(sim, &nam.rdma, plan)
    }

    fn install_inner(sim: &Sim, cluster: &Cluster, plan: FaultPlan) -> Self {
        cluster.set_fault_seed(plan.seed);
        let state = Rc::new(ControllerState {
            stats: Cell::new(ChaosStats::default()),
            done: Cell::new(plan.events.is_empty()),
            hooks: RefCell::new(Vec::new()),
        });
        let controller = ChaosController {
            cluster: cluster.clone(),
            state,
        };
        let mut events = plan.events;
        events.sort_by_key(|&(t, _)| t);
        if !events.is_empty() {
            let driver = controller.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                for (t, ev) in events {
                    sim2.sleep_until(t).await;
                    driver.apply(&ev);
                }
                driver.state.done.set(true);
            });
        }
        controller
    }

    /// Register a hook called after every applied event (restart hooks
    /// typically trigger a sanitizer re-walk of the tree structure).
    pub fn on_event(&self, hook: impl Fn(&FaultEvent) + 'static) {
        self.state.hooks.borrow_mut().push(Box::new(hook));
    }

    /// Register a hook called only for recovery events
    /// ([`FaultEvent::RestartServer`] and [`FaultEvent::ReviveClient`]).
    pub fn on_recovery(&self, hook: impl Fn(&FaultEvent) + 'static) {
        self.on_event(move |ev| {
            if matches!(
                ev,
                FaultEvent::RestartServer(_) | FaultEvent::ReviveClient(_)
            ) {
                hook(ev);
            }
        });
    }

    fn apply(&self, ev: &FaultEvent) {
        let mut stats = self.state.stats.get();
        match *ev {
            FaultEvent::KillClient(c) => self.cluster.kill_client(c),
            FaultEvent::ReviveClient(c) => {
                self.cluster.revive_client(c);
                stats.recoveries += 1;
            }
            FaultEvent::CrashServer(s) => self.cluster.fail_server(s),
            FaultEvent::RestartServer(s) => {
                self.cluster.restart_server(s);
                stats.recoveries += 1;
            }
            FaultEvent::DegradeLink(s, d) => self.cluster.degrade_link(s, d),
            FaultEvent::RestoreLink(s) => self.cluster.restore_link(s),
            FaultEvent::KillOnNextLockAcquire(c) => self.cluster.arm_kill_on_lock_acquire(c),
        }
        stats.events_applied += 1;
        self.state.stats.set(stats);
        if self.cluster.has_observers() {
            self.cluster.note_instant(&fault_label(ev));
        }
        for hook in self.state.hooks.borrow().iter() {
            hook(ev);
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> ChaosStats {
        self.state.stats.get()
    }

    /// Whether every scheduled event has been applied.
    pub fn done(&self) -> bool {
        self.state.done.get()
    }

    /// The cluster this controller drives.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::{ClusterSpec, Endpoint, VerbError};

    #[test]
    fn scripted_plan_applies_in_order() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let plan = FaultPlan::new()
            .crash_server(SimTime::from_micros(10), 1)
            .restart_server(SimTime::from_micros(30), 1)
            .kill_client(SimTime::from_micros(20), 0);
        let ctrl = ChaosController::install(&sim, &cluster, plan);
        let seen = Rc::new(RefCell::new(Vec::new()));
        {
            let seen = seen.clone();
            let sim2 = sim.clone();
            ctrl.on_event(move |ev| seen.borrow_mut().push((sim2.now().as_nanos(), *ev)));
        }
        sim.run();
        assert_eq!(
            *seen.borrow(),
            vec![
                (10_000, FaultEvent::CrashServer(1)),
                (20_000, FaultEvent::KillClient(0)),
                (30_000, FaultEvent::RestartServer(1)),
            ]
        );
        assert!(ctrl.done());
        assert_eq!(ctrl.stats().events_applied, 3);
        assert_eq!(ctrl.stats().recoveries, 1);
        assert!(cluster.server_up(1));
        assert_eq!(cluster.server_restarts(1), 1);
    }

    #[test]
    fn crash_window_makes_verbs_fail() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = cluster.setup_alloc(0, 64);
        cluster.setup_write(ptr, &[7u8; 64]);
        let plan = FaultPlan::new()
            .crash_server(SimTime::from_micros(5), 0)
            .restart_server(SimTime::from_micros(50), 0);
        ChaosController::install(&sim, &cluster, plan);
        let ep = Endpoint::new(&cluster);
        let outcomes = Rc::new(RefCell::new(Vec::new()));
        {
            let outcomes = outcomes.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                sim2.sleep(SimDur::from_micros(10)).await; // inside the window
                let during = ep.read(ptr, 64).await.is_err();
                outcomes.borrow_mut().push(during);
                sim2.sleep(SimDur::from_micros(60)).await; // after restart
                let after = ep.read(ptr, 64).await.is_err();
                outcomes.borrow_mut().push(after);
            });
        }
        sim.run();
        assert_eq!(*outcomes.borrow(), vec![true, false]);
    }

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let make = |seed| {
            FaultPlan::randomized(seed, 4, 8, RandomProfile::default())
                .events()
                .to_vec()
        };
        assert_eq!(make(7), make(7), "same seed, same schedule");
        assert_ne!(make(7), make(8), "different seed, different schedule");
        let plan = FaultPlan::randomized(7, 4, 8, RandomProfile::default());
        // Default profile: 1 crash + 2 kills + 1 spike, each paired with
        // its recovery.
        assert_eq!(plan.events().len(), 8);
    }

    #[test]
    fn nam_restart_bumps_catalog_generation() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let plan = FaultPlan::new()
            .crash_server(SimTime::from_micros(5), 2)
            .restart_server(SimTime::from_micros(15), 2);
        let ctrl = ChaosController::install_nam(&sim, &nam, plan);
        let recoveries = Rc::new(Cell::new(0u32));
        {
            let recoveries = recoveries.clone();
            ctrl.on_recovery(move |_| recoveries.set(recoveries.get() + 1));
        }
        assert_eq!(nam.catalog.generation(), 0);
        sim.run();
        assert_eq!(
            nam.catalog.generation(),
            1,
            "restart invalidates descriptors"
        );
        assert_eq!(recoveries.get(), 1);
    }

    #[test]
    fn wal_restart_bumps_generation_only_after_replay() {
        let sim = Sim::new();
        let spec = ClusterSpec {
            durability: rdma_sim::Durability::Wal,
            ..ClusterSpec::default()
        };
        let nam = NamCluster::new(&sim, spec);
        let plan = FaultPlan::new()
            .crash_server(SimTime::from_micros(5), 1)
            .restart_server(SimTime::from_micros(15), 1);
        ChaosController::install_nam(&sim, &nam, plan);
        let mid = Rc::new(Cell::new(u64::MAX));
        {
            let mid = mid.clone();
            let generation = nam.catalog.generation_handle();
            let sim2 = sim.clone();
            sim.spawn(async move {
                // Well inside the boot + replay window (2 ms boot).
                sim2.sleep(SimDur::from_micros(100)).await;
                mid.set(generation.get());
            });
        }
        sim.run();
        assert_eq!(mid.get(), 0, "no bump before recovery completes");
        assert_eq!(nam.catalog.generation(), 1, "bump after replay");
        assert!(nam.rdma.server_up(1));
    }

    #[test]
    fn kill_on_lock_acquire_arms_the_trigger() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = cluster.setup_alloc(0, 64);
        // Bare cluster (no index build ran): inject a minimal acquire
        // shape — unlocked word -> locked word — before the plan arms.
        cluster.set_lock_acquire_shape(|expected, new| expected & 1 == 0 && new & 1 == 1);
        let plan = FaultPlan::new().kill_on_lock_acquire(SimTime::from_nanos(0), 0);
        ChaosController::install(&sim, &cluster, plan);
        let ep = Endpoint::new(&cluster);
        let cluster2 = cluster.clone();
        sim.spawn(async move {
            // An acquire-shaped CAS (0 -> locked) fires the trigger.
            let locked = blink_lock_word_locked_by(0, ep.client_id());
            assert_eq!(ep.cas(ptr, 0, locked).await.unwrap(), 0);
            assert!(cluster2.client_dead(ep.client_id()));
            assert!(matches!(
                ep.fetch_add(ptr, 1).await,
                Err(VerbError::Cancelled)
            ));
        });
        sim.run();
        assert_eq!(cluster.fault_stats().lock_kills_fired, 1);
    }

    // chaos does not depend on blink; reproduce the acquire encoding
    // (bit 0 lock, bits 48..=55 owner) for the trigger test.
    fn blink_lock_word_locked_by(word: u64, owner: u64) -> u64 {
        (word & !(0xff << 48)) | ((owner & 0xff) << 48) | 1
    }

    #[test]
    fn degrade_window_drops_deterministically() {
        let run = |seed| {
            let sim = Sim::new();
            let cluster = Cluster::new(&sim, ClusterSpec::default());
            let ptr = cluster.setup_alloc(0, 64);
            let plan = FaultPlan::with_seed(seed).degrade_link(
                SimTime::from_nanos(0),
                0,
                LinkDegrade {
                    drop_chance: 0.5,
                    extra_delay: SimDur::ZERO,
                    bandwidth_factor: 1.0,
                },
            );
            ChaosController::install(&sim, &cluster, plan);
            let ep = Endpoint::new(&cluster);
            let fails = Rc::new(Cell::new(0u32));
            {
                let fails = fails.clone();
                sim.spawn(async move {
                    for _ in 0..40 {
                        if ep.read(ptr, 64).await.is_err() {
                            fails.set(fails.get() + 1);
                        }
                    }
                });
            }
            sim.run();
            fails.get()
        };
        let a = run(3);
        assert_eq!(a, run(3), "drop pattern is a function of the seed");
        assert!(a > 5 && a < 35, "~50% drop rate, got {a}/40");
    }
}
