#![warn(missing_docs)]

//! # analysis — the paper's theoretical scalability model (§2.3)
//!
//! Implements Tables 1 and 2 and generates Figure 3: the maximal
//! theoretical throughput of each index design, computed as the total
//! aggregated (remote) memory bandwidth of all memory servers divided by
//! the per-query bandwidth requirement.
//!
//! The model's three steps (Table 2):
//!
//! 1. **Available bandwidth.** Fine-grained distribution always farms
//!    requests over all `S` servers (`S·BW`); coarse-grained drops to
//!    `1·BW` under attribute-value skew because one server holds most of
//!    the index.
//! 2. **Bandwidth per query.** A point query traverses `H` pages of `P`
//!    bytes; skew adds a read amplification of `z` leaf pages; a range
//!    query with selectivity `s` additionally retrieves `s·L` leaves;
//!    hash partitioning must traverse the index on *all* `S` servers.
//! 3. **Max throughput** = step 1 / step 2.

/// Table 1: the model's symbols with the paper's example values as
/// defaults.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// `S` — number of memory servers.
    pub servers: u64,
    /// `BW` — bandwidth per memory server, bytes/second.
    pub bandwidth: f64,
    /// `P` — page size of index nodes, bytes.
    pub page_size: u64,
    /// `D` — data size in tuples.
    pub data_size: u64,
    /// `K` — key size in bytes (same as value/pointer size).
    pub key_size: u64,
}

impl Default for ModelParams {
    /// The example column of Table 1: S=4, BW=50 GB/s, P=1024, D=100M,
    /// K=8.
    fn default() -> Self {
        ModelParams {
            servers: 4,
            bandwidth: 50e9,
            page_size: 1024,
            data_size: 100_000_000,
            key_size: 8,
        }
    }
}

/// Index scheme column of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Fine-grained (1-sided).
    FineGrained,
    /// Coarse-grained, range partitioned (2-sided).
    CgRange,
    /// Coarse-grained, hash partitioned (2-sided).
    CgHash,
}

/// Workload distribution.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Dist {
    /// Uniform accesses.
    Uniform,
    /// Attribute-value skew with read amplification `z`.
    Skewed {
        /// Leaf-page read amplification.
        z: f64,
    },
}

/// Query shape.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Query {
    /// Point query (selectivity `1/L`, or `z/L` under skew).
    Point,
    /// Range query with selectivity `s` (fraction of leaves retrieved).
    Range {
        /// Selectivity.
        s: f64,
    },
}

impl ModelParams {
    /// `M = P / (3K)` — fanout per index node.
    pub fn fanout(&self) -> u64 {
        self.page_size / (3 * self.key_size)
    }

    /// `L = D / M` — number of leaf nodes.
    pub fn leaves(&self) -> u64 {
        self.data_size.div_ceil(self.fanout())
    }

    /// `H_FG = log_M(L)` — max index height of the fine-grained (global)
    /// tree; also `H_SCG` (the CG height under skew).
    pub fn height_fg(&self) -> u64 {
        log_ceil(self.leaves() as f64, self.fanout() as f64)
    }

    /// `H_UCG = log_M(L/S)` — max CG index height under uniform data.
    pub fn height_cg_uniform(&self) -> u64 {
        log_ceil(
            self.leaves() as f64 / self.servers as f64,
            self.fanout() as f64,
        )
    }

    /// Step 1: total effectively available bandwidth, bytes/second.
    pub fn available_bandwidth(&self, scheme: Scheme, dist: Dist) -> f64 {
        match (scheme, dist) {
            // FG farms out requests regardless of skew.
            (Scheme::FineGrained, _) => self.servers as f64 * self.bandwidth,
            (_, Dist::Uniform) => self.servers as f64 * self.bandwidth,
            // CG under attribute-value skew: one server holds the bulk.
            (_, Dist::Skewed { .. }) => self.bandwidth,
        }
    }

    /// Step 2: bandwidth requirement per query, bytes.
    pub fn bytes_per_query(&self, scheme: Scheme, dist: Dist, query: Query) -> f64 {
        let p = self.page_size as f64;
        let l = self.leaves() as f64;
        let s_srv = self.servers as f64;
        let h = match (scheme, dist) {
            (Scheme::FineGrained, _) => self.height_fg(),
            (_, Dist::Uniform) => self.height_cg_uniform(),
            (_, Dist::Skewed { .. }) => self.height_fg(), // H_SCG = H_FG
        } as f64;
        // Hash partitioning sends range queries to all servers.
        let traversals = match (scheme, query) {
            (Scheme::CgHash, Query::Range { .. }) => s_srv,
            _ => 1.0,
        };
        match (query, dist) {
            (Query::Point, Dist::Uniform) => h * p,
            (Query::Point, Dist::Skewed { z }) => h * p + z * p,
            (Query::Range { s }, Dist::Uniform) => traversals * h * p + s * l * p,
            (Query::Range { s }, Dist::Skewed { z }) => traversals * h * p + s * z * l * p,
        }
    }

    /// Step 3: theoretical max throughput, queries/second.
    pub fn max_throughput(&self, scheme: Scheme, dist: Dist, query: Query) -> f64 {
        self.available_bandwidth(scheme, dist) / self.bytes_per_query(scheme, dist, query)
    }
}

fn log_ceil(n: f64, base: f64) -> u64 {
    if n <= 1.0 {
        return 1;
    }
    (n.ln() / base.ln()).ceil() as u64
}

/// One point of a Figure 3 series.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Point {
    /// Memory servers `S`.
    pub servers: u64,
    /// Max throughput (operations/second).
    pub throughput: f64,
}

/// The four series of Figure 3: range queries, sel = 0.001, z = 10, for
/// S in `servers`.
pub fn figure3(base: ModelParams, servers: &[u64]) -> Vec<(&'static str, Vec<Fig3Point>)> {
    let q = Query::Range { s: 0.001 };
    let skew = Dist::Skewed { z: 10.0 };
    let mk = |scheme: Scheme, dist: Dist| {
        servers
            .iter()
            .map(|&s| {
                let p = ModelParams { servers: s, ..base };
                Fig3Point {
                    servers: s,
                    throughput: p.max_throughput(scheme, dist, q),
                }
            })
            .collect::<Vec<_>>()
    };
    vec![
        (
            "Fine-Grained (Unif./Skew)",
            mk(Scheme::FineGrained, Dist::Uniform),
        ),
        (
            "Coarse-Grained Range (Unif.)",
            mk(Scheme::CgRange, Dist::Uniform),
        ),
        (
            "Coarse-Grained Hash (Unif.)",
            mk(Scheme::CgHash, Dist::Uniform),
        ),
        (
            "Coarse-Grained Range/Hash (Skew)",
            mk(Scheme::CgRange, skew),
        ),
    ]
}

/// Render Table 1 (symbol, value) rows for the given parameters.
pub fn table1(p: ModelParams) -> Vec<(String, String)> {
    vec![
        ("# of Memory Servers (S)".into(), p.servers.to_string()),
        (
            "Bandwidth per Memory Server (BW)".into(),
            format!("{:.0} GB/s", p.bandwidth / 1e9),
        ),
        (
            "Page Size of Index Nodes (P)".into(),
            format!("{} B", p.page_size),
        ),
        ("Data Size (D)".into(), format!("{}", p.data_size)),
        ("Key Size (K)".into(), format!("{} B", p.key_size)),
        ("Fanout M = P/(3K)".into(), p.fanout().to_string()),
        ("Leaves L = D/M".into(), p.leaves().to_string()),
        (
            "Max. height (FG, Unif./Skew)".into(),
            p.height_fg().to_string(),
        ),
        (
            "Max. height (CG, Unif.)".into(),
            p.height_cg_uniform().to_string(),
        ),
        ("Max. height (CG, Skew)".into(), p.height_fg().to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_example_column() {
        // The paper's example values: M=42, L≈2.3M, heights 4/4/4.
        let p = ModelParams::default();
        assert_eq!(p.fanout(), 42);
        let l = p.leaves();
        assert!((2_300_000..2_500_000).contains(&l), "L = {l}");
        assert_eq!(p.height_fg(), 4);
        assert_eq!(p.height_cg_uniform(), 4);
    }

    #[test]
    fn available_bandwidth_step1() {
        let p = ModelParams::default();
        let sbw = 4.0 * 50e9;
        assert_eq!(
            p.available_bandwidth(Scheme::FineGrained, Dist::Uniform),
            sbw
        );
        assert_eq!(
            p.available_bandwidth(Scheme::FineGrained, Dist::Skewed { z: 10.0 }),
            sbw,
            "FG keeps S*BW under skew"
        );
        assert_eq!(p.available_bandwidth(Scheme::CgRange, Dist::Uniform), sbw);
        assert_eq!(
            p.available_bandwidth(Scheme::CgRange, Dist::Skewed { z: 10.0 }),
            50e9,
            "CG collapses to 1*BW under skew"
        );
    }

    #[test]
    fn point_query_bytes() {
        let p = ModelParams::default();
        let page = p.page_size as f64;
        assert_eq!(
            p.bytes_per_query(Scheme::FineGrained, Dist::Uniform, Query::Point),
            4.0 * page
        );
        assert_eq!(
            p.bytes_per_query(Scheme::FineGrained, Dist::Skewed { z: 10.0 }, Query::Point),
            4.0 * page + 10.0 * page
        );
    }

    #[test]
    fn hash_range_pays_s_traversals() {
        let p = ModelParams::default();
        let range = Query::Range { s: 0.001 };
        let h_hash = p.bytes_per_query(Scheme::CgHash, Dist::Uniform, range);
        let h_range = p.bytes_per_query(Scheme::CgRange, Dist::Uniform, range);
        let diff = h_hash - h_range;
        let expect = (p.servers - 1) as f64 * p.height_cg_uniform() as f64 * p.page_size as f64;
        assert!((diff - expect).abs() < 1.0);
    }

    #[test]
    fn figure3_shapes() {
        let servers = [2u64, 4, 8, 16, 32, 64];
        let series = figure3(ModelParams::default(), &servers);
        let by_name: std::collections::BTreeMap<_, _> = series.into_iter().collect();
        let fg = &by_name["Fine-Grained (Unif./Skew)"];
        let cg_skew = &by_name["Coarse-Grained Range/Hash (Skew)"];
        let cg_range = &by_name["Coarse-Grained Range (Unif.)"];
        let cg_hash = &by_name["Coarse-Grained Hash (Unif.)"];

        // FG scales ~linearly with S.
        let ratio = fg.last().unwrap().throughput / fg.first().unwrap().throughput;
        assert!(
            (25.0..40.0).contains(&ratio),
            "FG 2->64 servers should scale ~32x, got {ratio:.1}"
        );
        // CG under skew is flat (bounded by one server's bandwidth).
        let flat = cg_skew.last().unwrap().throughput / cg_skew.first().unwrap().throughput;
        assert!(flat < 1.2, "CG skew must stagnate, got {flat:.2}x");
        // Hash never beats range partitioning for range queries.
        for (h, r) in cg_hash.iter().zip(cg_range.iter()) {
            assert!(h.throughput <= r.throughput + 1.0);
        }
        // All uniform schemes scale well.
        let cr = cg_range.last().unwrap().throughput / cg_range.first().unwrap().throughput;
        assert!(cr > 20.0);
    }

    #[test]
    fn fig3_magnitude_matches_paper_axis() {
        // Figure 3 shows ~1.4M ops/s max at S=64 for FG with the example
        // parameters (sel=0.001, z=10).
        let p = ModelParams {
            servers: 64,
            ..ModelParams::default()
        };
        let t = p.max_throughput(
            Scheme::FineGrained,
            Dist::Uniform,
            Query::Range { s: 0.001 },
        );
        assert!(
            (0.8e6..2.0e6).contains(&t),
            "FG @64 servers ≈ 1.3M ops/s in Fig 3, got {t:.0}"
        );
    }

    #[test]
    fn table1_renders_all_rows() {
        let rows = table1(ModelParams::default());
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().any(|(k, v)| k.contains("Fanout") && v == "42"));
    }
}
