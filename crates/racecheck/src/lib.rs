//! Happens-before race detector for one-sided verbs.
//!
//! A FastTrack-style vector-clock checker riding the always-compiled
//! [`VerbObserver`] bus: every completed verb, RPC, fence note and
//! recovery event updates per-client and per-page clock state, and every
//! optimistic READ is classified as *synchronized*, *benign-validated*
//! (a version/fence re-check was observed on the page before its bytes
//! escaped into a completed op result) or an **unvalidated race** — the
//! bug class the B-link optimistic-lock-coupling protocol (§3.2/§4.2 of
//! the paper) is one forgotten `covers()` away from.
//!
//! ## Happens-before model
//!
//! Threads of the clock space are clients (endpoint ids) and servers
//! (at [`SERVER_BASE`]` + s`). Edges:
//!
//! * **lock-word CAS** — a successful CAS on a page joins the page's
//!   release clock *and* write clock into the caller: the CAS observed
//!   the word the previous holder's unlock FAA produced (and, because
//!   verbs in a critical section are awaited sequentially, everything
//!   written before it). This covers both the acquire CAS of Listing 4
//!   and the lease-break CAS of recovery.
//! * **unlock FAA** — publishes the holder's clock into the page's
//!   release clock (release edge) and is recorded as a write to the
//!   page.
//! * **RPC** — request/reply pair mutually joins client and server
//!   clocks at completion time (the two-sided designs synchronize only
//!   here).
//! * **restart epoch** — [`FenceKind::EpochCheck`] records the cluster
//!   restart epoch a client has reconciled its cached state against;
//!   [`FenceKind::CachedUse`] against a stale epoch is a violation.
//! * **WAL recovery** — `on_server_recovered` resets the recovered
//!   server's page clocks: its memory was rewound to the durable
//!   prefix, so pre-crash shadow state must not order post-crash reads.
//!
//! Page clock state is kept at page granularity: the registry grows
//! from page-sized READ/WRITE/ALLOC events and atomics attach to the
//! containing page (offset-keyed fallback for a bare word).
//!
//! ## Read classification
//!
//! A page READ opens a *pending* window when it is **racy** (the page's
//! last write was performed by another thread and is not in the
//! reader's clock) or **dirty** (the lock word was held by another
//! client at read time). The window closes without a report when the
//! engine validates it — a [`FenceKind::Revalidate`] on the page
//! (`covers()` / `find_child()` / lock-word re-check, whatever its
//! outcome), a successful CAS on the page by the reader, a superseding
//! clean re-read, a [`FenceKind::Discard`], or failure of the attempt
//! (verb error / unsuccessful op). A pending window still open when the
//! op completes *successfully* is reported: a racy snapshot escaped
//! into a result no fence ever re-checked. Dirty windows are stricter —
//! a torn snapshot cannot be validated by a version re-check (the
//! version it would check is itself mid-update), so only supersession,
//! discard or attempt failure clears them.
//!
//! ## Write discipline (lockset rule)
//!
//! Every lock-word transition is itself a verb we observe, so the
//! detector also tracks the current lock holder per page and flags any
//! in-place WRITE to a lock-protected page by a non-holder
//! (`unlocked-write`): such bytes are published with no release edge
//! ordering them, the signature of an unlock-before-write reorder.
//! Pages that have never seen lock traffic (a fresh split sibling or
//! new root being initialized) are exempt until their first CAS/FAA.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use blink::layout::lock_word;
use rdma_sim::observer::{FenceKind, OpKind, RpcEvent, VerbEvent, VerbKind, VerbObserver};
use rdma_sim::{AttemptKind, Cluster, RemotePtr};
use simnet::SimTime;

/// Clock-space id of memory server `s` is `SERVER_BASE + s`; ids below
/// it are client (endpoint) ids.
pub const SERVER_BASE: u64 = 1 << 48;

/// Reads shorter than this are word probes of a synchronization word,
/// not page snapshots; they carry no data that can escape unvalidated.
const MIN_PAGE_READ: usize = 64;

/// Cap on retained violations (the counter keeps counting past it).
const MAX_VIOLATIONS: usize = 1024;

/// A vector clock over client/server thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(BTreeMap<u64, u64>);

impl VClock {
    /// This clock's component for `tid` (0 if never seen).
    pub fn get(&self, tid: u64) -> u64 {
        self.0.get(&tid).copied().unwrap_or(0)
    }

    /// Whether the event `epoch @ tid` happened-before (or at) this clock.
    pub fn covers(&self, tid: u64, epoch: u64) -> bool {
        self.get(tid) >= epoch
    }

    fn bump(&mut self, tid: u64) -> u64 {
        let e = self.0.entry(tid).or_insert(0);
        *e += 1;
        *e
    }

    fn join(&mut self, other: &VClock) {
        for (&tid, &v) in &other.0 {
            let e = self.0.entry(tid).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }

    fn render(&self) -> String {
        let mut s = String::from("{");
        for (i, (tid, v)) in self.0.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            if *tid >= SERVER_BASE {
                s.push_str(&format!("srv{}:{v}", tid - SERVER_BASE));
            } else {
                s.push_str(&format!("c{tid}:{v}"));
            }
        }
        s.push('}');
        s
    }
}

fn tid_name(tid: u64) -> String {
    if tid >= SERVER_BASE {
        format!("server {}", tid - SERVER_BASE)
    } else {
        format!("client {tid}")
    }
}

/// The last write recorded against a page: one end of a potential race.
#[derive(Clone, Debug)]
struct WriteSite {
    tid: u64,
    epoch: u64,
    time: SimTime,
    what: &'static str,
}

/// Per-page clock state (FastTrack page metadata).
#[derive(Default)]
struct PageState {
    len: usize,
    /// Join of every unlock-FAA holder clock: what an acquire CAS learns.
    release: VClock,
    /// Join of every writer clock: what observing the current word implies.
    write_clock: VClock,
    last_write: Option<WriteSite>,
    /// Client currently holding the page lock, tracked from observed
    /// lock-word transitions (acquire CAS sets it, unlock FAA and
    /// lease-break CAS clear it).
    locked_by: Option<u64>,
    /// Whether any lock-word traffic (CAS/FAA) was ever observed — a
    /// page that has seen none is being initialized (fresh split
    /// sibling, new root) and is not yet lock-protected.
    sync_seen: bool,
}

/// An optimistic READ whose validation window is still open.
#[derive(Clone, Debug)]
struct PendingRead {
    server: usize,
    start: u64,
    len: usize,
    time: SimTime,
    /// Owner-id field of the lock word if it was held by another client
    /// at read time (a torn snapshot — R1), else `None`.
    dirty: Option<u64>,
    /// The conflicting write this read races with, if any (R2).
    writer: Option<WriteSite>,
    /// Reader's clock at read time, for the report.
    reader_clock: VClock,
}

/// One reported race, with both access sites and the missing edge.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule id: `unvalidated-race`, `locked-snapshot-read`,
    /// `write-write-race`, `unlocked-write` or `stale-epoch-cached-use`.
    pub rule: &'static str,
    /// Client on whose access the rule fired.
    pub client: u64,
    /// Server holding the raced page.
    pub server: usize,
    /// Start offset of the raced page.
    pub offset: u64,
    /// Virtual time the rule fired.
    pub time: SimTime,
    /// Full causal chain: both access sites, clock states, missing edge.
    pub detail: String,
}

impl Violation {
    /// One-line rendering.
    pub fn render(&self) -> String {
        format!(
            "[racecheck:{}] client {} @ server {} offset {:#x} t={}: {}",
            self.rule, self.client, self.server, self.offset, self.time, self.detail
        )
    }
}

/// Aggregate counters (deterministic across runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Page READs classified.
    pub reads_checked: u64,
    /// READs that opened a racy pending window.
    pub racy_reads: u64,
    /// READs that observed a foreign-locked word (torn snapshot).
    pub dirty_reads: u64,
    /// Pending windows closed by a validation edge (fence, CAS,
    /// supersession, discard).
    pub validated: u64,
    /// Violations recorded (including any dropped past the cap).
    pub violations: u64,
}

#[derive(Default)]
struct State {
    clocks: BTreeMap<u64, VClock>,
    pages: BTreeMap<(usize, u64), PageState>,
    pending: BTreeMap<u64, BTreeMap<(usize, u64), PendingRead>>,
    epoch_seen: BTreeMap<u64, u64>,
    violations: Vec<Violation>,
    counts: Counts,
}

impl State {
    /// Page containing `(server, offset)`, registering `(offset, len)`
    /// when nothing does. Page-sized traffic self-registers; a bare
    /// atomic on an unseen region gets an offset-keyed word entry that a
    /// later page-sized access widens.
    fn page_key(&mut self, server: usize, offset: u64, len: usize) -> (usize, u64) {
        let hit = self
            .pages
            .range(..=(server, offset))
            .next_back()
            .filter(|&(&(s, start), p)| s == server && offset < start + p.len as u64)
            .map(|(&k, p)| (k, p.len));
        if let Some((key, cur_len)) = hit {
            // Widen a word entry to the page once page-sized traffic
            // shows its true extent.
            if offset == key.1 && len > cur_len {
                self.pages.get_mut(&key).expect("present").len = len;
            }
            return key;
        }
        self.pages.insert(
            (server, offset),
            PageState {
                len,
                ..PageState::default()
            },
        );
        (server, offset)
    }

    fn clock(&mut self, tid: u64) -> &mut VClock {
        self.clocks.entry(tid).or_default()
    }

    fn push_violation(&mut self, v: Violation) {
        self.counts.violations += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Bump `tid`'s own component; returns the post-bump clock and epoch.
    fn bumped(&mut self, tid: u64) -> (VClock, u64) {
        let c = self.clocks.entry(tid).or_default();
        let epoch = c.bump(tid);
        (c.clone(), epoch)
    }

    /// Write-write race check: the page's last write was by another
    /// thread and is not in the writer's clock.
    fn check_write_write(
        &mut self,
        tid: u64,
        clk: &VClock,
        key: (usize, u64),
        ev_time: SimTime,
        what: &'static str,
    ) {
        let race = self
            .pages
            .get(&key)
            .and_then(|p| p.last_write.clone())
            .filter(|lw| lw.tid != tid && !clk.covers(lw.tid, lw.epoch));
        if let Some(lw) = race {
            let detail = format!(
                "{what} by client {tid} races with {} by {} \
                 (epoch {}:{} at t={}): writer clock {} lacks it — \
                 missing HB edge {}:{} \u{2192} client {tid}",
                lw.what,
                tid_name(lw.tid),
                lw.tid,
                lw.epoch,
                lw.time,
                clk.render(),
                lw.tid,
                lw.epoch,
            );
            self.push_violation(Violation {
                rule: "write-write-race",
                client: tid,
                server: key.0,
                offset: key.1,
                time: ev_time,
                detail,
            });
        }
    }

    /// Record a write by `tid` (with pre-bumped clock `clk`/`epoch`)
    /// against the page at `key`.
    fn commit_write(
        &mut self,
        tid: u64,
        epoch: u64,
        clk: &VClock,
        key: (usize, u64),
        ev_time: SimTime,
        what: &'static str,
    ) {
        let page = self.pages.get_mut(&key).expect("registered");
        page.write_clock.join(clk);
        page.last_write = Some(WriteSite {
            tid,
            epoch,
            time: ev_time,
            what,
        });
    }

    /// Drop every pending window of `client` without reporting (the
    /// attempt failed or a new op span began; the bytes never reached a
    /// successful result).
    fn drop_pending(&mut self, client: u64) {
        if let Some(p) = self.pending.get_mut(&client) {
            p.clear();
        }
    }

    /// Report every still-open pending window of `client`: its op just
    /// completed successfully, so the racy/torn bytes escaped with no
    /// validating fence ever observed.
    fn report_pending(&mut self, client: u64, op: OpKind, time: SimTime) {
        let open = match self.pending.get_mut(&client) {
            Some(p) => std::mem::take(p),
            None => return,
        };
        for (_, p) in open {
            let (rule, chain) = if let Some(owner) = p.dirty {
                (
                    "locked-snapshot-read",
                    format!(
                        "READ at t={} of [server {}, {:#x}+{}] observed the page \
                         while its lock word was held by owner id {owner} (not the \
                         reader): the snapshot is torn by construction and no \
                         version re-check can validate it, yet it escaped into a \
                         completed {} result",
                        p.time,
                        p.server,
                        p.start,
                        p.len,
                        op.label(),
                    ),
                )
            } else {
                let w = p.writer.as_ref().expect("racy or dirty");
                (
                    "unvalidated-race",
                    format!(
                        "optimistic READ at t={} of [server {}, {:#x}+{}] races \
                         with {} by {} (epoch {}:{} at t={}); reader clock at read \
                         {} lacks it, and no validating fence (covers/find_child/\
                         lock-CAS) was observed on the page before the bytes \
                         escaped into a completed {} result — missing HB edge \
                         {}:{} \u{2192} client {client}",
                        p.time,
                        p.server,
                        p.start,
                        p.len,
                        w.what,
                        tid_name(w.tid),
                        w.tid,
                        w.epoch,
                        w.time,
                        p.reader_clock.render(),
                        op.label(),
                        w.tid,
                        w.epoch,
                    ),
                )
            };
            self.push_violation(Violation {
                rule,
                client,
                server: p.server,
                offset: p.start,
                time,
                detail: chain,
            });
        }
    }
}

/// The detector. Install once per cluster; query at end of run.
pub struct Racecheck {
    cluster: Cluster,
    state: RefCell<State>,
}

impl Racecheck {
    /// Install a detector on `cluster`. `page_size` is advisory (the
    /// page registry self-organizes from observed traffic); it bounds
    /// nothing but is kept for symmetry with the sanitizer's installer.
    pub fn install(cluster: &Cluster, page_size: usize) -> Rc<Racecheck> {
        let _ = page_size;
        let rc = Rc::new(Racecheck {
            cluster: cluster.clone(),
            state: RefCell::new(State::default()),
        });
        cluster.add_observer(rc.clone());
        rc
    }

    /// Cluster restart epoch: total restarts across servers — the same
    /// signal `CacheLayer`/`Learned` reconcile against.
    fn current_epoch(&self) -> u64 {
        (0..self.cluster.num_servers())
            .map(|s| self.cluster.server_restarts(s))
            .sum()
    }

    /// All recorded violations (capped at an internal maximum;
    /// [`Counts::violations`] keeps the true total).
    pub fn violations(&self) -> Vec<Violation> {
        self.state.borrow().violations.clone()
    }

    /// Whether no rule fired.
    pub fn is_clean(&self) -> bool {
        self.state.borrow().counts.violations == 0
    }

    /// Aggregate counters.
    pub fn counts(&self) -> Counts {
        self.state.borrow().counts
    }

    /// Multi-line report (empty string when clean).
    pub fn report(&self) -> String {
        let st = self.state.borrow();
        let mut out = String::new();
        for v in &st.violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        if st.counts.violations as usize > st.violations.len() {
            out.push_str(&format!(
                "[racecheck] ... and {} more (cap reached)\n",
                st.counts.violations as usize - st.violations.len()
            ));
        }
        out
    }

    /// Panic with the full report if any rule fired.
    pub fn assert_clean(&self) {
        if !self.is_clean() {
            panic!(
                "racecheck found {} violation(s):\n{}",
                self.counts().violations,
                self.report()
            );
        }
    }

    fn handle_read(&self, ev: &VerbEvent) {
        if ev.len < MIN_PAGE_READ {
            return; // word probe of a synchronization word
        }
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        let key = st.page_key(ev.server, ev.offset, ev.len);
        let page_len = st.pages[&key].len;
        st.counts.reads_checked += 1;
        // Current lock word, via the untimed control path (all pool
        // borrows are released before an event fires). The word the
        // memory effect just copied out is the word in memory now: the
        // simulation is single-threaded and the event fires at apply time.
        let word_ptr = RemotePtr::new(key.0, key.1);
        let word = u64::from_le_bytes(
            self.cluster.setup_read(word_ptr, 8)[..8]
                .try_into()
                .expect("8-byte lock word"),
        );
        let dirty = (lock_word::is_locked(word) && lock_word::owner_of(word) != (ev.client & 0xff))
            .then(|| lock_word::owner_of(word));
        let reader_clock = st.clock(ev.client).clone();
        let writer = st.pages[&key]
            .last_write
            .clone()
            .filter(|w| w.tid != ev.client && !reader_clock.covers(w.tid, w.epoch));
        if dirty.is_some() {
            st.counts.dirty_reads += 1;
        } else if writer.is_some() {
            st.counts.racy_reads += 1;
        }
        let pending = st.pending.entry(ev.client).or_default();
        if dirty.is_some() || writer.is_some() {
            // A re-read supersedes any earlier window on the same page.
            pending.insert(
                key,
                PendingRead {
                    server: key.0,
                    start: key.1,
                    len: page_len,
                    time: ev.time,
                    dirty,
                    writer,
                    reader_clock,
                },
            );
        } else if pending.remove(&key).is_some() {
            // Clean re-read of a page with an open window: superseded.
            st.counts.validated += 1;
        }
    }

    fn handle_cas(&self, ev: &VerbEvent, expected: u64, new: u64, prev: u64) {
        let mut st = self.state.borrow_mut();
        let key = st.page_key(ev.server, ev.offset, 8);
        if prev == expected {
            // Track lock ownership from the installed word: an acquire
            // leaves it locked (by this client), a lease break leaves
            // it unlocked.
            let page = st.pages.get_mut(&key).expect("registered");
            page.sync_seen = true;
            page.locked_by = lock_word::is_locked(new).then_some(ev.client);
            // The CAS observed (and replaced) the word: acquire edge.
            // Joining the write clock as well as the release clock covers
            // pages that were written but never yet released (a fresh
            // split sibling installed inside the splitter's critical
            // section): with sequentially awaited verbs, observing the
            // word implies the writes that produced it have applied.
            let (rel, wcl) = {
                let page = &st.pages[&key];
                (page.release.clone(), page.write_clock.clone())
            };
            let clk = st.clock(ev.client);
            clk.join(&rel);
            clk.join(&wcl);
            let (clk, epoch) = st.bumped(ev.client);
            st.check_write_write(ev.client, &clk, key, ev.time, "lock-word CAS");
            st.commit_write(ev.client, epoch, &clk, key, ev.time, "lock-word CAS");
            // A successful CAS on the page validates the reader's own
            // open window (the version it read is the version it swapped).
            if st
                .pending
                .get_mut(&ev.client)
                .is_some_and(|p| p.remove(&key).is_some())
            {
                st.counts.validated += 1;
            }
        } else {
            // Failed CAS still observed the current word, which (with
            // sequentially awaited critical-section verbs) implies the
            // writes leading to it have applied.
            let wcl = st.pages[&key].write_clock.clone();
            st.clock(ev.client).join(&wcl);
        }
    }

    fn fence_page(&self, st: &mut State, server: usize, offset: u64) -> Option<(usize, u64)> {
        st.pages
            .range(..=(server, offset))
            .next_back()
            .filter(|&(&(s, start), p)| s == server && offset < start + p.len as u64)
            .map(|(&k, _)| k)
    }
}

impl VerbObserver for Racecheck {
    fn on_verb(&self, ev: &VerbEvent) {
        match ev.kind {
            VerbKind::Alloc => {
                let mut st = self.state.borrow_mut();
                st.page_key(ev.server, ev.offset, ev.len);
            }
            VerbKind::Read => self.handle_read(ev),
            VerbKind::Write => {
                let mut st = self.state.borrow_mut();
                let key = st.page_key(ev.server, ev.offset, ev.len);
                // Lockset check: an in-place WRITE to a lock-protected
                // page (one that has seen lock-word traffic) must come
                // from the current lock holder — otherwise the bytes
                // are published with no release edge ordering them, and
                // any concurrent optimistic reader races with them by
                // construction. Fresh pages being initialized (split
                // sibling, new root) have seen no lock traffic yet.
                let (held, protected) = {
                    let page = &st.pages[&key];
                    (page.locked_by, page.sync_seen)
                };
                if protected && held != Some(ev.client) {
                    let holder = match held {
                        Some(o) => format!("the lock is held by client {o}"),
                        None => "the lock was already released \u{2014} the \
                                 unlock FAA published the page before these \
                                 bytes landed"
                            .to_string(),
                    };
                    let detail = format!(
                        "in-place WRITE by client {} to the lock-protected page \
                         [server {}, {:#x}+{}] outside its critical section \
                         ({holder}): optimistic readers can observe the bytes \
                         with no happens-before edge from this write",
                        ev.client, key.0, key.1, ev.len,
                    );
                    st.push_violation(Violation {
                        rule: "unlocked-write",
                        client: ev.client,
                        server: key.0,
                        offset: key.1,
                        time: ev.time,
                        detail,
                    });
                }
                let (clk, epoch) = st.bumped(ev.client);
                st.check_write_write(ev.client, &clk, key, ev.time, "WRITE");
                st.commit_write(ev.client, epoch, &clk, key, ev.time, "WRITE");
            }
            VerbKind::Faa { .. } => {
                // The unlock FAA of Listing 4: release edge, then a write.
                // The release clock includes the FAA's own epoch so the
                // next acquirer is ordered after the unlock itself.
                let mut st = self.state.borrow_mut();
                let key = st.page_key(ev.server, ev.offset, 8);
                let (clk, epoch) = st.bumped(ev.client);
                st.check_write_write(ev.client, &clk, key, ev.time, "unlock FAA");
                let page = st.pages.get_mut(&key).expect("registered");
                page.sync_seen = true;
                page.locked_by = None;
                page.release.join(&clk);
                st.commit_write(ev.client, epoch, &clk, key, ev.time, "unlock FAA");
            }
            VerbKind::Cas {
                expected,
                new,
                prev,
            } => self.handle_cas(ev, expected, new, prev),
        }
    }

    fn on_free(&self, server: usize, offset: u64, len: usize, _time: SimTime) {
        let mut st = self.state.borrow_mut();
        let end = offset + len as u64;
        let keys: Vec<_> = st
            .pages
            .range((server, 0)..(server, end))
            .filter(|&(&(_, start), p)| start + p.len as u64 > offset)
            .map(|(&k, _)| k)
            .collect();
        for k in &keys {
            st.pages.remove(k);
        }
        for p in st.pending.values_mut() {
            p.retain(|k, _| !keys.contains(k));
        }
    }

    fn on_rpc(&self, ev: &RpcEvent) {
        let mut st = self.state.borrow_mut();
        let stid = SERVER_BASE + ev.server as u64;
        st.clock(ev.client).bump(ev.client);
        st.clock(stid).bump(stid);
        let c = st.clock(ev.client).clone();
        st.clock(stid).join(&c);
        let s = st.clock(stid).clone();
        st.clock(ev.client).join(&s);
    }

    fn on_verb_failed(&self, client: u64, _server: usize, _time: SimTime) {
        // The attempt aborts; its bytes never escape into a result.
        self.state.borrow_mut().drop_pending(client);
    }

    fn on_unreachable(&self, client: u64, _server: usize, _kind: AttemptKind, _time: SimTime) {
        self.state.borrow_mut().drop_pending(client);
    }

    fn on_op_start(&self, client: u64, _kind: OpKind, _time: SimTime) {
        self.state.borrow_mut().drop_pending(client);
    }

    fn on_op_end(&self, client: u64, kind: OpKind, time: SimTime, ok: bool) {
        let mut st = self.state.borrow_mut();
        if ok {
            st.report_pending(client, kind, time);
        } else {
            st.drop_pending(client);
        }
    }

    fn on_fence(&self, client: u64, kind: FenceKind, server: usize, offset: u64, time: SimTime) {
        let mut st = self.state.borrow_mut();
        match kind {
            FenceKind::Revalidate => {
                if let Some(key) = self.fence_page(&mut st, server, offset) {
                    let cleared = st.pending.get_mut(&client).is_some_and(|p| {
                        // A torn snapshot cannot be validated by a version
                        // re-check; only supersession/discard clears it.
                        match p.get(&key) {
                            Some(w) if w.dirty.is_none() => p.remove(&key).is_some(),
                            _ => false,
                        }
                    });
                    if cleared {
                        st.counts.validated += 1;
                    }
                }
            }
            FenceKind::Discard => {
                if let Some(key) = self.fence_page(&mut st, server, offset) {
                    if st
                        .pending
                        .get_mut(&client)
                        .is_some_and(|p| p.remove(&key).is_some())
                    {
                        st.counts.validated += 1;
                    }
                }
            }
            FenceKind::EpochCheck => {
                let epoch = self.current_epoch();
                st.epoch_seen.insert(client, epoch);
            }
            FenceKind::CachedUse => {
                let now_epoch = self.current_epoch();
                let seen = st.epoch_seen.get(&client).copied().unwrap_or(0);
                if seen != now_epoch {
                    let detail = format!(
                        "cached artifact derived from [server {server}, {offset:#x}] \
                         served at restart epoch {now_epoch}, but client {client} \
                         last reconciled at epoch {seen}: the backing pool was \
                         rebuilt since the artifact was cached (missing \
                         restart-epoch flush edge)"
                    );
                    st.push_violation(Violation {
                        rule: "stale-epoch-cached-use",
                        client,
                        server,
                        offset,
                        time,
                        detail,
                    });
                }
            }
        }
    }

    fn on_server_recovered(&self, server: usize, _time: SimTime) {
        let mut st = self.state.borrow_mut();
        // Memory rewound to the durable prefix: pre-crash clock shadow
        // state on this server must not order post-crash accesses.
        for ((_, _), page) in st.pages.range_mut((server, 0)..(server, u64::MAX)) {
            page.release = VClock::default();
            page.write_clock = VClock::default();
            page.last_write = None;
            // Whoever held the lock at the crash lost it with the
            // volatile state; survivors re-acquire before writing.
            page.locked_by = None;
        }
        for p in st.pending.values_mut() {
            p.retain(|&(s, _), _| s != server);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vclock_join_and_covers() {
        let mut a = VClock::default();
        a.bump(1);
        a.bump(1);
        let mut b = VClock::default();
        b.bump(2);
        b.join(&a);
        assert!(b.covers(1, 2));
        assert!(b.covers(2, 1));
        assert!(!b.covers(1, 3));
        assert_eq!(a.get(2), 0);
    }

    #[test]
    fn page_registry_contains_and_widens() {
        let mut st = State::default();
        // A bare atomic registers a word entry; a page read widens it.
        assert_eq!(st.page_key(0, 0x100, 8), (0, 0x100));
        assert_eq!(st.page_key(0, 0x100, 256), (0, 0x100));
        assert_eq!(st.pages[&(0, 0x100)].len, 256);
        // Offsets inside the page resolve to its start.
        assert_eq!(st.page_key(0, 0x1f0, 8), (0, 0x100));
        // The next page is distinct.
        assert_eq!(st.page_key(0, 0x200, 256), (0, 0x200));
    }

    #[test]
    fn violation_cap_keeps_counting() {
        let mut st = State::default();
        for i in 0..(MAX_VIOLATIONS + 5) {
            st.push_violation(Violation {
                rule: "unvalidated-race",
                client: i as u64,
                server: 0,
                offset: 0x100,
                time: SimTime::ZERO,
                detail: String::new(),
            });
        }
        assert_eq!(st.violations.len(), MAX_VIOLATIONS);
        assert_eq!(st.counts.violations, (MAX_VIOLATIONS + 5) as u64);
    }
}
