//! Client-side caching of upper index levels (Appendix A.4).
//!
//! The paper's initial caching results: compute servers can cache hot
//! inner nodes and skip remote READs during descents, which benefits the
//! fine-grained design most (it pays one round trip per level). For
//! read-only workloads no invalidation is needed; with writes, cache
//! invalidation becomes the hard problem the appendix defers to future
//! work.
//!
//! Caching is wired into the real operation path as a decorator over the
//! engine's page resolution ([`crate::resolve::Cached`]); this module
//! holds the state it decorates with:
//!
//! * [`ClientCache`] — one compute server's page cache (inner nodes, for
//!   the fine-grained design);
//! * [`CacheLayer`] — the per-index layer owning one [`ClientCache`] (or
//!   route map, for the hybrid) per client, aggregate hit/miss/
//!   invalidation counters, and the server-restart epoch that flushes
//!   everything when any memory server restarts.
//!
//! A stale entry is harmless: descents correct themselves through B-link
//! sibling chases, and each detected stale step invalidates the entry
//! that caused it (the validation rule in [`crate::resolve`]).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use blink::node::LeafNodeRef;
use blink::Key;
use rdma_sim::{Cluster, RemotePtr};
use simnet::stats::Counter;

/// A per-compute-server cache of inner index nodes.
#[derive(Default)]
pub struct ClientCache {
    pages: RefCell<BTreeMap<u64, Vec<u8>>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
}

impl ClientCache {
    /// Cache holding at most `capacity` pages (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        ClientCache {
            pages: RefCell::new(BTreeMap::new()),
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Cached copy of `ptr`, if present.
    fn get(&self, ptr: RemotePtr) -> Option<Vec<u8>> {
        let hit = self.pages.borrow().get(&ptr.raw()).cloned();
        if hit.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Cached copy of `ptr` without touching the hit/miss counters.
    fn peek(&self, ptr: RemotePtr) -> Option<Vec<u8>> {
        self.pages.borrow().get(&ptr.raw()).cloned()
    }

    /// Install a page copy.
    fn put(&self, ptr: RemotePtr, page: Vec<u8>) {
        let mut map = self.pages.borrow_mut();
        if self.capacity > 0 && map.len() >= self.capacity && !map.contains_key(&ptr.raw()) {
            // Simple random-ish eviction: drop an arbitrary entry. The
            // paper leaves replacement policy to future work.
            if let Some(&k) = map.keys().next() {
                map.remove(&k);
            }
        }
        map.insert(ptr.raw(), page);
    }

    /// Drop the entry for `ptr`; reports whether one was present.
    fn remove(&self, ptr: RemotePtr) -> bool {
        self.pages.borrow_mut().remove(&ptr.raw()).is_some()
    }

    /// Drop everything (epoch invalidation).
    pub fn invalidate_all(&self) {
        self.pages.borrow_mut().clear();
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.pages.borrow().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.borrow().is_empty()
    }
}

/// Aggregate statistics of one index's [`CacheLayer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits served without touching the wire (page or route).
    pub hits: u64,
    /// Misses that went to the inner source.
    pub misses: u64,
    /// Entries dropped because a descent proved them stale.
    pub invalidations: u64,
    /// Whole-cache flushes triggered by a server restart.
    pub restart_flushes: u64,
}

impl CacheStats {
    /// Fraction of cache accesses that hit (0 when never accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Route entry: covering leaf pointer plus a key proven covered (the
/// leaf's low fence can only move further left of it — leaves are never
/// merged — so `low_hint <= key <= high_key` guarantees the leaf covered
/// the whole span at cache time and still reaches `key` by at most
/// chasing right).
type Route = (u64, Key);

/// Per-index cache layer: one page cache (or route map) per client,
/// shared counters, and restart-epoch invalidation.
///
/// Per *client*, not per index: real compute servers do not share memory,
/// so each simulated client keeps its own cache and pays its own warm-up
/// misses. All determinism-sensitive state is `BTreeMap`-backed.
pub struct CacheLayer {
    cluster: Cluster,
    capacity: usize,
    pages: RefCell<BTreeMap<u64, ClientCache>>,
    routes: RefCell<BTreeMap<u64, BTreeMap<Key, Route>>>,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    restart_flushes: Counter,
    epoch: Cell<u64>,
}

impl CacheLayer {
    /// A layer over `cluster` holding at most `capacity` entries per
    /// client (0 = unbounded).
    pub fn new(cluster: &Cluster, capacity: usize) -> Self {
        let layer = CacheLayer {
            cluster: cluster.clone(),
            capacity,
            pages: RefCell::new(BTreeMap::new()),
            routes: RefCell::new(BTreeMap::new()),
            hits: Counter::new(),
            misses: Counter::new(),
            invalidations: Counter::new(),
            restart_flushes: Counter::new(),
            epoch: Cell::new(0),
        };
        layer.epoch.set(layer.current_epoch());
        layer
    }

    fn current_epoch(&self) -> u64 {
        (0..self.cluster.num_servers())
            .map(|s| self.cluster.server_restarts(s))
            .sum()
    }

    /// Flush everything if any memory server restarted since the last
    /// access: a restarted server's pool content was rebuilt, so cached
    /// bytes and routes into it can no longer be trusted.
    pub fn flush_if_restarted(&self) {
        let now = self.current_epoch();
        if now != self.epoch.get() {
            self.epoch.set(now);
            self.pages.borrow_mut().clear();
            self.routes.borrow_mut().clear();
            self.restart_flushes.inc();
        }
    }

    /// Cached page for `client`, counting a hit or miss.
    pub fn page_hit(&self, client: u64, ptr: RemotePtr) -> Option<Vec<u8>> {
        let hit = self.pages.borrow().get(&client).and_then(|c| c.get(ptr));
        if hit.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Cached page for `client` without counting (introspection).
    pub fn peek_page(&self, client: u64, ptr: RemotePtr) -> Option<Vec<u8>> {
        self.pages.borrow().get(&client).and_then(|c| c.peek(ptr))
    }

    /// Install a page copy for `client`.
    pub fn put_page(&self, client: u64, ptr: RemotePtr, page: Vec<u8>) {
        self.pages
            .borrow_mut()
            .entry(client)
            .or_insert_with(|| ClientCache::new(self.capacity))
            .put(ptr, page);
    }

    /// Drop `client`'s copy of `ptr` (stale-step detection).
    pub fn drop_page(&self, client: u64, ptr: RemotePtr) {
        if let Some(c) = self.pages.borrow().get(&client) {
            if c.remove(ptr) {
                self.invalidations.inc();
            }
        }
    }

    /// Cached leaf route covering `key` for `client`, counting a hit or
    /// miss. Only entries whose `low_hint <= key` qualify (see `Route`).
    pub fn route_hit(&self, client: u64, key: Key) -> Option<RemotePtr> {
        let hit = self.routes.borrow().get(&client).and_then(|m| {
            m.range(key..)
                .next()
                .filter(|(_, &(_, low))| low <= key)
                .map(|(_, &(raw, _))| RemotePtr::from_raw(raw))
        });
        if hit.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Record that the descent for `key` ended at the covering leaf
    /// `ptr` with bytes `page`.
    pub fn note_route(&self, client: u64, key: Key, ptr: RemotePtr, page: &[u8]) {
        let high = LeafNodeRef::new(page).high_key();
        let mut routes = self.routes.borrow_mut();
        let map = routes.entry(client).or_default();
        let low = match map.get(&high) {
            Some(&(_, l)) => l.min(key),
            None => {
                if self.capacity > 0 && map.len() >= self.capacity {
                    if let Some(&k) = map.keys().next() {
                        map.remove(&k);
                    }
                }
                key
            }
        };
        map.insert(high, (ptr.raw(), low));
    }

    /// Drop `client`'s route covering `key` (stale-step detection).
    pub fn drop_route(&self, client: u64, key: Key) {
        let mut routes = self.routes.borrow_mut();
        if let Some(map) = routes.get_mut(&client) {
            if let Some(high) = map.range(key..).next().map(|(&h, _)| h) {
                map.remove(&high);
                self.invalidations.inc();
            }
        }
    }

    /// Fix up `client`'s own routes after it split a leaf: the left half
    /// keeps its pointer under the new separator, the right half takes
    /// over the old high key. (Other clients correct lazily through the
    /// validation rule.)
    pub fn note_split(&self, client: u64, sep: Key, old_high: Key, left: u64, right: u64) {
        let mut routes = self.routes.borrow_mut();
        if let Some(map) = routes.get_mut(&client) {
            if let Some((_, low)) = map.remove(&old_high) {
                map.insert(sep, (left, low));
                map.insert(old_high, (right, sep.saturating_add(1)));
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            restart_flushes: self.restart_flushes.get(),
        }
    }

    /// Total entries cached across clients (pages plus routes).
    pub fn entries(&self) -> usize {
        let pages: usize = self.pages.borrow().values().map(|c| c.len()).sum();
        let routes: usize = self.routes.borrow().values().map(|m| m.len()).sum();
        pages + routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fg::{FgConfig, FineGrained};
    use blink::PageLayout;
    use rdma_sim::{Cluster, ClusterSpec, Endpoint};
    use simnet::Sim;

    fn cached_cfg() -> FgConfig {
        FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 0,
            cache_capacity: Some(0),
        }
    }

    #[test]
    fn cached_lookups_skip_network() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let idx = FineGrained::build(&cluster, cached_cfg(), (0..5000u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&cluster);
        {
            let idx = idx.clone();
            sim.spawn(async move {
                // Repeated lookups of nearby keys reuse cached inners —
                // through the integrated lookup path, not a side door.
                for rep in 0..10u64 {
                    for i in 0..20u64 {
                        let k = (1000 + i) * 8;
                        assert_eq!(
                            idx.lookup(&ep, k).await.unwrap(),
                            Some(1000 + i),
                            "rep {rep}"
                        );
                    }
                }
            });
        }
        sim.run();
        let stats = idx.cache().expect("cache enabled").stats();
        assert!(
            stats.hits > stats.misses * 3,
            "cache must mostly hit: {stats:?}"
        );
        let reads: u64 = (0..4).map(|s| cluster.server_stats(s).onesided_ops).sum();
        // 200 lookups; without caching each costs height (~4-5) READs.
        assert!(
            reads < 400,
            "caching must cut READs well below uncached (~900): {reads}"
        );
    }

    #[test]
    fn capacity_bound_respected() {
        let cache = ClientCache::new(2);
        cache.put(RemotePtr::new(0, 8), vec![0]);
        cache.put(RemotePtr::new(0, 16), vec![1]);
        cache.put(RemotePtr::new(0, 24), vec![2]);
        assert!(cache.len() <= 2);
    }

    #[test]
    fn invalidate_all_clears() {
        let cache = ClientCache::new(0);
        cache.put(RemotePtr::new(0, 8), vec![0]);
        assert!(!cache.is_empty());
        cache.invalidate_all();
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_cache_corrected_by_sibling_chase() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let idx = FineGrained::build(&cluster, cached_cfg(), (0..200u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&cluster);
        {
            let idx = idx.clone();
            sim.spawn(async move {
                // Warm the cache.
                for i in 0..200u64 {
                    idx.lookup(&ep, i * 8).await.unwrap();
                }
                // Mutate the tree: many inserts cause splits the cached
                // inner copies do not see.
                for i in 0..200u64 {
                    idx.insert(&ep, i * 8 + 1, 7_000 + i).await.unwrap();
                }
                // Stale cached inners still route correctly via chases.
                for i in 0..200u64 {
                    assert_eq!(idx.lookup(&ep, i * 8 + 1).await.unwrap(), Some(7_000 + i));
                }
            });
        }
        sim.run();
        drop(idx);
    }
}
