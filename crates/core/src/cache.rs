//! Client-side caching of upper index levels (Appendix A.4).
//!
//! The paper's initial caching results: compute servers can cache hot
//! inner nodes and skip remote READs during descents, which benefits the
//! fine-grained design most (it pays one round trip per level). For
//! read-only workloads no invalidation is needed; with writes, cache
//! invalidation becomes the hard problem the appendix defers to future
//! work. This module implements the read-mostly variant: inner nodes are
//! cached; leaves are always fetched fresh; a stale cached inner node is
//! harmless because descents correct themselves through B-link sibling
//! chases, and entries are refreshed on every miss.

use std::cell::RefCell;
use std::collections::BTreeMap;

use blink::node::{kind_of, HeadNodeRef, InnerNodeRef, LeafNodeRef, NodeKind};
use blink::{Key, Value};
use rdma_sim::{Endpoint, RemotePtr, VerbError};
use simnet::stats::Counter;

use crate::fg::FineGrained;
use crate::onesided::read_unlocked;

/// A per-compute-server cache of inner index nodes.
#[derive(Default)]
pub struct ClientCache {
    pages: RefCell<BTreeMap<u64, Vec<u8>>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
}

impl ClientCache {
    /// Cache holding at most `capacity` pages (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        ClientCache {
            pages: RefCell::new(BTreeMap::new()),
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Cached copy of `ptr`, if present.
    fn get(&self, ptr: RemotePtr) -> Option<Vec<u8>> {
        let hit = self.pages.borrow().get(&ptr.raw()).cloned();
        if hit.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Install a page copy.
    fn put(&self, ptr: RemotePtr, page: Vec<u8>) {
        let mut map = self.pages.borrow_mut();
        if self.capacity > 0 && map.len() >= self.capacity && !map.contains_key(&ptr.raw()) {
            // Simple random-ish eviction: drop an arbitrary entry. The
            // paper leaves replacement policy to future work.
            if let Some(&k) = map.keys().next() {
                map.remove(&k);
            }
        }
        map.insert(ptr.raw(), page);
    }

    /// Drop everything (epoch invalidation).
    pub fn invalidate_all(&self) {
        self.pages.borrow_mut().clear();
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.pages.borrow().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.borrow().is_empty()
    }
}

/// Fine-grained point lookup with inner-node caching: cached levels cost
/// no network round trips; leaves are always read fresh.
pub async fn fg_lookup_cached(
    idx: &FineGrained,
    ep: &Endpoint,
    cache: &ClientCache,
    key: Key,
) -> Result<Option<Value>, VerbError> {
    let ps = idx.layout().page_size();
    let mut cur = idx.root();
    loop {
        // Try the cache for inner nodes only; a cached page is used
        // without touching the network.
        let page = match cache.get(cur) {
            Some(p) => p,
            None => {
                let p = read_unlocked(ep, cur, ps).await?;
                if kind_of(&p) == NodeKind::Inner {
                    cache.put(cur, p.clone());
                }
                p
            }
        };
        match kind_of(&page) {
            NodeKind::Inner => {
                let node = InnerNodeRef::new(&page);
                cur = match node.find_child(key) {
                    Some(c) => RemotePtr::from_page_ptr(c),
                    None => RemotePtr::from_page_ptr(node.right_sibling()),
                };
            }
            NodeKind::Head => {
                cur = RemotePtr::from_page_ptr(HeadNodeRef::new(&page).right_sibling());
            }
            NodeKind::Leaf => {
                let node = LeafNodeRef::new(&page);
                if node.covers(key) {
                    return Ok(node.get(key));
                }
                cur = RemotePtr::from_page_ptr(node.right_sibling());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fg::FgConfig;
    use blink::PageLayout;
    use rdma_sim::{Cluster, ClusterSpec};
    use simnet::Sim;
    use std::rc::Rc;

    #[test]
    fn cached_lookups_skip_network() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let cfg = FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 0,
        };
        let idx = FineGrained::build(&cluster, cfg, (0..5000u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&cluster);
        let cache = Rc::new(ClientCache::new(0));
        {
            let idx = idx.clone();
            let cache = cache.clone();
            sim.spawn(async move {
                // Repeated lookups of nearby keys reuse cached inners.
                for rep in 0..10u64 {
                    for i in 0..20u64 {
                        let k = (1000 + i) * 8;
                        assert_eq!(
                            fg_lookup_cached(&idx, &ep, &cache, k).await.unwrap(),
                            Some(1000 + i),
                            "rep {rep}"
                        );
                    }
                }
            });
        }
        sim.run();
        assert!(cache.hits() > cache.misses() * 3, "cache must mostly hit");
        let reads: u64 = (0..4).map(|s| cluster.server_stats(s).onesided_ops).sum();
        // 200 lookups; without caching each costs height (~4-5) READs.
        assert!(
            reads < 400,
            "caching must cut READs well below uncached (~900): {reads}"
        );
    }

    #[test]
    fn capacity_bound_respected() {
        let cache = ClientCache::new(2);
        cache.put(RemotePtr::new(0, 8), vec![0]);
        cache.put(RemotePtr::new(0, 16), vec![1]);
        cache.put(RemotePtr::new(0, 24), vec![2]);
        assert!(cache.len() <= 2);
    }

    #[test]
    fn invalidate_all_clears() {
        let cache = ClientCache::new(0);
        cache.put(RemotePtr::new(0, 8), vec![0]);
        assert!(!cache.is_empty());
        cache.invalidate_all();
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_cache_corrected_by_sibling_chase() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let cfg = FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 0,
        };
        let idx = FineGrained::build(&cluster, cfg, (0..200u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&cluster);
        let cache = Rc::new(ClientCache::new(0));
        {
            let idx = idx.clone();
            let cache = cache.clone();
            sim.spawn(async move {
                // Warm the cache.
                for i in 0..200u64 {
                    fg_lookup_cached(&idx, &ep, &cache, i * 8).await.unwrap();
                }
                // Mutate the tree: many inserts cause splits the cache
                // does not see.
                for i in 0..200u64 {
                    idx.insert(&ep, i * 8 + 1, 7_000 + i).await.unwrap();
                }
                // Stale cached inners still route correctly via chases.
                for i in 0..200u64 {
                    assert_eq!(
                        fg_lookup_cached(&idx, &ep, &cache, i * 8 + 1)
                            .await
                            .unwrap(),
                        Some(7_000 + i)
                    );
                }
            });
        }
        sim.run();
    }
}
