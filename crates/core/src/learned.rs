//! Design 4: learned-index routing for one-RTT point lookups.
//!
//! The paper's three designs all pay a root-to-leaf descent or a full
//! RPC per point lookup. Follow-up systems (Outback, DEX — see
//! PAPERS.md) observe that a compact client-resident *learned model*
//! mapping key → remote leaf address collapses the lookup to a single
//! one-sided READ of the predicted leaf. This module is that fourth
//! family: the storage layout is the hybrid's (server-local upper
//! trees plus fine-grained leaf chain), but clients route with a PGM-style
//! piecewise-linear model ([`learned_index::PgmModel`]) trained over the
//! leaf-level `high_key → leaf pointer` table and shipped through the
//! catalog, touching zero servers on the hot path.
//!
//! ## Mispredict / fallback state machine
//!
//! A prediction costs no verbs and lands on the covering leaf *or one
//! left of it* — never right — because the model answers the ceiling
//! query over a past snapshot of the table and the B-link invariants
//! (splits move keys right, leaves are never merged or reused) only ever
//! move coverage rightward. The engine's ordinary descent then:
//!
//! * **hit** — the READ leaf covers the key: done, one READ total;
//! * **mispredict** — the leaf no longer covers the key (post-split
//!   drift): the descent chases right siblings, each chase reporting
//!   [`NodeSource::invalidate`], which this source counts as a
//!   mispredict toward the drift rate;
//! * **no model** — after a restart-epoch flush, or when retraining is
//!   blocked by a down server: `start` falls back to the hybrid's
//!   upper-level RPC resolution, so operations proceed (and remain
//!   correct) with the paper's §5 protocol while the model is cold.
//!
//! ## Retrain policy
//!
//! Retraining is *incremental maintenance by replacement*: when the
//! stale-prediction rate since the last training reaches
//! [`rdma_sim::ClusterSpec::learned_retrain_threshold`], the client
//! walks the leaf chain over the untimed setup path (the same
//! control-path view the sanitizer uses), rebuilds the table, and trains
//! a fresh model — the old one stays in service until the swap, and
//! in-flight operations hold their own `Rc` snapshot. A memory-server
//! restart invalidates every shipped pointer wholesale: the restart
//! epoch (total restarts across servers, the same signal
//! [`crate::cache::CacheLayer`] watches) flushes the model to `None`,
//! and retraining is deferred until every server is back up — until
//! then the RPC fallback carries the load.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use blink::node::{kind_of, HeadNodeRef, LeafNodeRef, NodeKind};
use blink::{Key, PageLayout, Ptr, Value};
use learned_index::PgmModel;
use nam::{NamCluster, PartitionMap};
use rdma_sim::{Cluster, Endpoint, RemotePtr, VerbError};

use crate::engine::{self, TreeWriter};
use crate::fg::FgConfig;
use crate::hybrid::Hybrid;
use crate::onesided::read_unlocked;
use crate::resolve::{CachePolicy, Cached, NodeSource, OpAccess};

fn rp(p: Ptr) -> RemotePtr {
    RemotePtr::from_page_ptr(p)
}

/// Counters of the learned routing layer (all client-side; the model
/// itself never issues verbs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LearnedStats {
    /// Descent starts answered by the model.
    pub predictions: u64,
    /// Stale routing steps detected downstream of a prediction (sibling
    /// chases reported through [`NodeSource::invalidate`]).
    pub mispredicts: u64,
    /// Model rebuilds (drift-triggered and post-flush).
    pub retrains: u64,
    /// Wholesale model flushes caused by a restart-epoch change.
    pub epoch_flushes: u64,
    /// Descent starts that fell back to the hybrid's upper-level RPC
    /// because no model was available.
    pub fallbacks: u64,
}

/// The learned-routing index: hybrid storage, model-predicted access.
pub struct Learned {
    tree: Rc<Hybrid>,
    /// Current model; `None` after an epoch flush until retraining is
    /// possible again. Never borrowed across an await.
    model: RefCell<Option<Rc<PgmModel>>>,
    /// Restart epoch the model was trained under.
    epoch: Cell<u64>,
    epsilon: u32,
    retrain_threshold: f64,
    model_fanout: usize,
    // Drift window since the last (re)training.
    predictions_since: Cell<u64>,
    mispredicts_since: Cell<u64>,
    // Lifetime totals.
    predictions: Cell<u64>,
    mispredicts: Cell<u64>,
    retrains: Cell<u64>,
    epoch_flushes: Cell<u64>,
    fallbacks: Cell<u64>,
}

impl Learned {
    /// Build the hybrid layout over `items`, then train the initial
    /// model from its leaf chain. Model knobs come from the cluster
    /// spec (`learned_epsilon`, `learned_retrain_threshold`,
    /// `learned_model_fanout`).
    pub fn build(
        nam: &NamCluster,
        cfg: FgConfig,
        partition: PartitionMap,
        items: impl Iterator<Item = (Key, Value)>,
    ) -> Rc<Self> {
        let spec = nam.rdma.spec().clone();
        let idx = Learned {
            tree: Hybrid::build(nam, cfg, partition, items),
            model: RefCell::new(None),
            epoch: Cell::new(0),
            epsilon: spec.learned_epsilon,
            retrain_threshold: spec.learned_retrain_threshold,
            model_fanout: spec.learned_model_fanout,
            predictions_since: Cell::new(0),
            mispredicts_since: Cell::new(0),
            predictions: Cell::new(0),
            mispredicts: Cell::new(0),
            retrains: Cell::new(0),
            epoch_flushes: Cell::new(0),
            fallbacks: Cell::new(0),
        };
        idx.epoch.set(idx.current_epoch());
        idx.retrain();
        Rc::new(idx)
    }

    fn ps(&self) -> usize {
        self.tree.layout().page_size()
    }

    fn cluster(&self) -> &Cluster {
        self.tree.cluster()
    }

    /// The hybrid index the model routes over (its partition map, leaf
    /// chain, and upper-level servers are the source of truth).
    pub fn tree(&self) -> &Rc<Hybrid> {
        &self.tree
    }

    /// Page geometry.
    pub fn layout(&self) -> PageLayout {
        self.tree.layout()
    }

    /// The current model, if one is live (`None` right after a
    /// restart-epoch flush while some server is still down).
    pub fn model(&self) -> Option<Rc<PgmModel>> {
        self.model.borrow().clone()
    }

    /// Routing-layer counters.
    pub fn stats(&self) -> LearnedStats {
        LearnedStats {
            predictions: self.predictions.get(),
            mispredicts: self.mispredicts.get(),
            retrains: self.retrains.get(),
            epoch_flushes: self.epoch_flushes.get(),
            fallbacks: self.fallbacks.get(),
        }
    }

    /// The engine's view of this index. No cache layer: the model *is*
    /// the client-resident routing state, with its own coherence story.
    pub(crate) fn source(&self) -> Cached<'_, Learned> {
        Cached::new(self, None)
    }

    /// Restart epoch: total restarts across memory servers (the same
    /// signal the client cache layer watches).
    fn current_epoch(&self) -> u64 {
        let cluster = self.cluster();
        (0..cluster.num_servers())
            .map(|s| cluster.server_restarts(s))
            .sum()
    }

    /// Keep the model coherent with cluster state: flush it wholesale on
    /// a restart-epoch change (shipped pointers may dangle into rebuilt
    /// pools), retrain when it is missing or the drift threshold is
    /// reached. Synchronous and verb-free; runs at every descent start.
    fn sync_model(&self) {
        let now = self.current_epoch();
        if now != self.epoch.get() {
            self.epoch.set(now);
            *self.model.borrow_mut() = None;
            self.epoch_flushes.set(self.epoch_flushes.get() + 1);
            self.predictions_since.set(0);
            self.mispredicts_since.set(0);
        }
        let missing = self.model.borrow().is_none();
        if missing || self.drift_rate() >= self.retrain_threshold {
            self.retrain();
        }
    }

    fn drift_rate(&self) -> f64 {
        let n = self.predictions_since.get();
        if n == 0 {
            return 0.0;
        }
        self.mispredicts_since.get() as f64 / n as f64
    }

    /// Rebuild the model from the live leaf chain over the untimed setup
    /// path. Skipped while any memory server is down (`setup_read` into
    /// a rebuilt pool would capture garbage); the caller keeps falling
    /// back to RPC resolution until the cluster is whole. The walk is
    /// defensive: a chain snapshot torn by a concurrent SMO aborts the
    /// rebuild and keeps the previous model (staleness is safe, see the
    /// module docs).
    fn retrain(&self) {
        let cluster = self.cluster();
        if !(0..cluster.num_servers()).all(|s| cluster.server_up(s)) {
            return;
        }
        let src = self.tree.setup_source();
        let mut table: Vec<(Key, u64)> = Vec::new();
        let mut cur = self.tree.first();
        while !cur.is_null() {
            // protolint: allow(validated-before-use) -- untimed
            // control-path snapshot, not a wire READ: a torn chain
            // aborts the rebuild below (non-chain page kind).
            let page = src.load(cur);
            match kind_of(&page) {
                NodeKind::Head => cur = rp(HeadNodeRef::new(&page).right_sibling()),
                NodeKind::Leaf => {
                    let leaf = LeafNodeRef::new(&page);
                    table.push((leaf.high_key(), cur.raw()));
                    cur = rp(leaf.right_sibling());
                }
                // A non-chain page in the chain: torn snapshot, abort.
                NodeKind::Inner => return,
            }
        }
        // protolint: allow(hot-panic) -- windows(2) yields exactly
        // two-element slices, so the pairwise indexing cannot miss.
        let intact = !table.is_empty()
            && table.windows(2).all(|w| w[0].0 < w[1].0)
            && table.last().map(|e| e.0) == Some(blink::KEY_MAX);
        if !intact {
            return;
        }
        let model = PgmModel::train(table, self.epsilon, self.model_fanout);
        *self.model.borrow_mut() = Some(Rc::new(model));
        self.retrains.set(self.retrains.get() + 1);
        self.predictions_since.set(0);
        self.mispredicts_since.set(0);
    }

    /// Point lookup: one one-sided READ of the predicted leaf on a model
    /// hit (plus sibling chases on drift).
    pub async fn lookup(&self, ep: &Endpoint, key: Key) -> Result<Option<Value>, VerbError> {
        engine::lookup(&self.source(), ep, key).await
    }

    /// Range query: predict the leaf covering `lo`, then the §4.3 chain
    /// scan (a too-far-left prediction only adds leading chain steps).
    pub async fn range(
        &self,
        ep: &Endpoint,
        lo: Key,
        hi: Key,
    ) -> Result<Vec<(Key, Value)>, VerbError> {
        engine::range(&self.source(), ep, lo, hi).await
    }

    /// Insert through the predicted leaf with the §4 one-sided install;
    /// splits register with the hybrid's upper levels over RPC, and the
    /// model picks the change up through drift-triggered retraining.
    pub async fn insert(&self, ep: &Endpoint, key: Key, value: Value) -> Result<(), VerbError> {
        engine::insert(&self.source(), ep, key, value, false).await
    }

    /// Tombstone-delete through the predicted leaf.
    pub async fn delete(&self, ep: &Endpoint, key: Key) -> Result<bool, VerbError> {
        engine::delete(&self.source(), ep, key).await
    }
}

impl NodeSource for Learned {
    /// Predictions resolve straight to the leaf chain; the client never
    /// descends inner levels (there are none visible to it).
    const CLIENT_DESCENT: bool = false;

    fn layout(&self) -> PageLayout {
        self.tree.layout()
    }

    fn cache_policy(&self) -> CachePolicy {
        CachePolicy::Routes
    }

    async fn start(
        &self,
        ep: &Endpoint,
        key: Key,
        access: OpAccess,
    ) -> Result<RemotePtr, VerbError> {
        self.sync_model();
        // `sync_model` just reconciled the model against the cluster
        // restart epoch — the same fence the cache layer evaluates.
        crate::note_epoch_check(ep);
        let predicted = self.model.borrow().as_ref().map(|m| m.predict(key));
        if let Some(ptr) = predicted {
            self.predictions.set(self.predictions.get() + 1);
            self.predictions_since.set(self.predictions_since.get() + 1);
            // A prediction is a served client-resident artifact: its
            // pointer derives from reads of a past leaf-chain snapshot.
            crate::note_fence(ep, rdma_sim::FenceKind::CachedUse, ptr);
            return Ok(ptr);
        }
        // No model (epoch flush with a server still down, or a torn
        // rebuild): the hybrid's upper-level RPC resolution carries the
        // operation.
        self.fallbacks.set(self.fallbacks.get() + 1);
        self.tree.start(ep, key, access).await
    }

    async fn load(&self, ep: &Endpoint, ptr: RemotePtr) -> Result<rdma_sim::PageBuf, VerbError> {
        // Mutation (race, `mutations` builds under
        // NAMDEX_RACE_MUT=learned-no-reread): read the predicted page
        // raw, skipping `read_unlocked`'s locked-spin re-read, so a
        // mid-write snapshot can escape into the descent.
        if crate::race_mut(crate::RaceMut::LearnedNoReread) {
            // protolint: allow(validated-before-use) -- seeded race
            // mutation; the clean path below reads through the
            // self-validating `read_unlocked` primitive.
            return ep.read(ptr, self.ps()).await;
        }
        read_unlocked(ep, ptr, self.ps()).await
    }

    fn invalidate(&self, ep: &Endpoint, key: Key, origin: RemotePtr) {
        // Every stale routing step downstream of a prediction is a
        // mispredict; the rate since the last training drives retrain.
        self.mispredicts.set(self.mispredicts.get() + 1);
        self.mispredicts_since.set(self.mispredicts_since.get() + 1);
        self.tree.invalidate(ep, key, origin);
    }
}

impl TreeWriter for Learned {
    async fn alloc(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError> {
        engine::rr_alloc(ep, self.tree.alloc_cursor(), self.ps()).await
    }

    /// Splits register with the hybrid's upper levels exactly as in
    /// design 3 (the fallback path must stay correct); the model itself
    /// is not patched in place — the affected entry simply goes stale,
    /// counts mispredicts, and drift-triggered retraining replaces it.
    async fn complete_split(
        &self,
        ep: &Endpoint,
        path: Vec<RemotePtr>,
        sep: Key,
        left: RemotePtr,
        right: RemotePtr,
        old_high: Key,
    ) -> Result<(), VerbError> {
        self.tree
            .complete_split(ep, path, sep, left, right, old_high)
            .await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::ClusterSpec;
    use simnet::Sim;

    fn small_cfg() -> FgConfig {
        FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 4,
            cache_capacity: None,
        }
    }

    fn build(sim: &Sim, n: u64) -> (NamCluster, Rc<Learned>) {
        let nam = NamCluster::new(sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), n * 8);
        let idx = Learned::build(&nam, small_cfg(), partition, (0..n).map(|i| (i * 8, i)));
        (nam, idx)
    }

    #[test]
    fn static_lookup_is_one_read() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 5000);
        assert_eq!(idx.stats().retrains, 1, "built with a trained model");
        let ep = Endpoint::new(&nam.rdma);
        let got = Rc::new(RefCell::new(Vec::new()));
        {
            let got = got.clone();
            let idx = idx.clone();
            sim.spawn(async move {
                for i in [0u64, 1234, 4999] {
                    let v = idx.lookup(&ep, i * 8).await.unwrap();
                    got.borrow_mut().push(v);
                }
                let v = idx.lookup(&ep, 9).await.unwrap();
                got.borrow_mut().push(v);
            });
        }
        sim.run();
        assert_eq!(*got.borrow(), vec![Some(0), Some(1234), Some(4999), None]);
        // No RPCs at all and exactly one one-sided READ per lookup: the
        // model routes client-side and the tree is static.
        let rpcs: u64 = (0..4).map(|s| nam.rdma.server_stats(s).rpcs).sum();
        let reads: u64 = (0..4).map(|s| nam.rdma.server_stats(s).onesided_ops).sum();
        assert_eq!(rpcs, 0);
        assert_eq!(reads, 4, "one READ per lookup, no chases on a static tree");
        let st = idx.stats();
        assert_eq!(st.predictions, 4);
        assert_eq!(st.mispredicts, 0);
        assert_eq!(st.fallbacks, 0);
    }

    #[test]
    fn inserts_split_then_drift_retrains() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 500);
        let ep = Endpoint::new(&nam.rdma);
        {
            let idx = idx.clone();
            sim.spawn(async move {
                for i in 0..500u64 {
                    idx.insert(&ep, i * 8 + 1, 90_000 + i).await.unwrap();
                }
                for i in 0..500u64 {
                    assert_eq!(idx.lookup(&ep, i * 8 + 1).await.unwrap(), Some(90_000 + i));
                    assert_eq!(idx.lookup(&ep, i * 8).await.unwrap(), Some(i));
                }
            });
        }
        sim.run();
        let st = idx.stats();
        assert!(st.mispredicts > 0, "doubling the keys must split leaves");
        assert!(st.retrains > 1, "drift must have triggered retraining");
        assert_eq!(st.fallbacks, 0, "no restarts: the model never flushes");
    }

    #[test]
    fn range_spans_predicted_start() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 5000);
        let ep = Endpoint::new(&nam.rdma);
        let out = Rc::new(RefCell::new(Vec::new()));
        {
            let out = out.clone();
            sim.spawn(async move {
                let rows = idx.range(&ep, 1200 * 8, 1399 * 8).await.unwrap();
                out.borrow_mut().extend(rows);
            });
        }
        sim.run();
        let rows = out.borrow();
        assert_eq!(rows.len(), 200);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        drop(nam);
    }

    #[test]
    fn delete_round_trip() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 300);
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            assert!(idx.delete(&ep, 100 * 8).await.unwrap());
            assert_eq!(idx.lookup(&ep, 100 * 8).await.unwrap(), None);
            assert!(!idx.delete(&ep, 100 * 8).await.unwrap());
        });
        sim.run();
        drop(nam);
    }

    #[test]
    fn restart_flushes_model_and_falls_back() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 1000);
        let ep = Endpoint::new(&nam.rdma);
        // Crash-free warmup so the first epoch is settled.
        {
            let idx = idx.clone();
            sim.spawn(async move {
                assert_eq!(idx.lookup(&ep, 80).await.unwrap(), Some(10));
            });
            sim.run();
        }
        nam.rdma.fail_server(1);
        nam.rdma.restart_server(1);
        // Server 1's pool was rebuilt: the next descent must flush the
        // model (epoch changed) and, with all servers up again, retrain
        // immediately — predictions resume with fresh pointers.
        let ep = Endpoint::new(&nam.rdma);
        let idx2 = idx.clone();
        sim.spawn(async move {
            // A restarted pool loses its pages; only routing behaviour
            // (flush + retrain) is asserted here, not durability.
            let _ = idx2.lookup(&ep, 80).await;
        });
        sim.run();
        let st = idx.stats();
        assert_eq!(st.epoch_flushes, 1, "restart must flush the model");
        assert!(st.retrains >= 2, "retrain after the flush");
    }
}
