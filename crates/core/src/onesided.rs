//! The one-sided access protocol of §4.2 (Listing 4), shared by the
//! fine-grained design and the hybrid design's leaf level.
//!
//! * `remote_readLockOrRestart` → [`read_unlocked`]: READ the node; if
//!   its lock bit is set, spin by re-reading (a *remote* spinlock — each
//!   retry costs a round trip on the wire, not server CPU).
//! * `remote_upgradeToWriteLockOrRestart` → [`lock_node`]: CAS the
//!   `(version, lock-bit)` word from the observed unlocked value to its
//!   locked form; on CAS failure, re-read and retry.
//! * `remote_writeUnlock` → [`write_unlock`]: install the (optional)
//!   split sibling with a WRITE, write the modified node back, then
//!   FETCH_AND_ADD(+1) the lock word — clearing the lock bit and bumping
//!   the version in one atomic step.
//!
//! ## Lease-based lock recovery
//!
//! A client that dies between its lock CAS and its unlock FAA orphans
//! the node forever under the plain protocol. The lock word therefore
//! carries the holder's owner id and a lease epoch (see
//! [`blink::layout::lock_word`]): a contender that observes the *same*
//! locked word for [`rdma_sim::ClusterSpec::lease_duration`] of virtual
//! time concludes the holder is dead and breaks the lock with a CAS to
//! [`lock_word::break_lease`] — clearing the lock bit, bumping the
//! version (so optimistic readers restart) and the lease epoch. Because
//! every legitimate unlock changes the word, a live holder can never be
//! broken: observing an unchanged locked word for a full lease is proof
//! the unlock FAA never arrived. This argument needs the lease to
//! outlast every effect a live holder may still have in flight — at most
//! [`rdma_sim::MAX_LOCK_HOLD_VERBS`] verbs, each of which applies or is
//! refused by `issue + verb_timeout` — which `ClusterSpec::validate`
//! (run by `Cluster::new`) enforces as
//! `lease_duration > MAX_LOCK_HOLD_VERBS * verb_timeout`.
//!
//! ## Critical-section inventory (generated)
//!
//! [protolint:cs-inventory:begin]
//! Critical sections discovered by `cargo xtask protolint` (verbs issued
//! between a lock acquire and its happy-path release; the best-effort
//! rescue FAA on error paths reuses the unlock slot and is not counted):
//!
//! - `delete`: in-place WRITE + unlock FAA (2 verbs)
//! - `delete`: unlock FAA (1 verb)
//! - `insert`: alloc + sibling WRITE + in-place WRITE + unlock FAA (4 verbs)
//! - `insert`: in-place WRITE + unlock FAA (2 verbs)
//! - `insert`: unlock FAA (1 verb)
//! - `lock_covering_leaf`: unlock FAA (1 verb)
//! - `propagate_split`: alloc + sibling WRITE + in-place WRITE + unlock FAA (4 verbs)
//! - `propagate_split`: in-place WRITE + unlock FAA (2 verbs)
//! - `propagate_split`: unlock FAA (1 verb)
//!
//! Widest section: 4 verbs = MAX_LOCK_HOLD_VERBS (4), enforced statically by the `cs-verb-bound` rule.
//! [protolint:cs-inventory:end]

use blink::layout::lock_word;
use blink::node::version_lock_of;
use rdma_sim::{Endpoint, PageBuf, RegionKind, RemotePtr, VerbError};
use simnet::SimTime;

use crate::engine::spin_backoff as backoff;

/// Lease bookkeeping for one spin loop: tracks how long the *same*
/// locked word has been observed and breaks it once the lease expires.
struct LeaseWatch {
    held: Option<(u64, SimTime)>,
}

impl LeaseWatch {
    fn new() -> Self {
        LeaseWatch { held: None }
    }

    /// Observe the locked word `w` at time `now`; if it has stayed
    /// unchanged past the lease, attempt the break CAS. The version bump
    /// in the broken word makes any stale copy restart, so the caller
    /// simply re-reads regardless of who wins the break race.
    async fn observe(
        &mut self,
        ep: &Endpoint,
        ptr: RemotePtr,
        w: u64,
        now: SimTime,
    ) -> Result<(), VerbError> {
        let lease = ep.cluster().spec().lease_duration;
        match self.held {
            Some((prev, since)) if prev == w => {
                if now - since >= lease {
                    // Versions only move forward, so an unchanged word
                    // means no unlock happened: the holder is dead.
                    let mut broken = lock_word::break_lease(w);
                    // Mutation B (`mutations` builds only): forget the
                    // lease-epoch bump — the historical recovery bug the
                    // sanitizer's CAS-shape check must flag.
                    if cfg!(feature = "mutations") {
                        broken = (broken & !lock_word::EPOCH_MASK) | (w & lock_word::EPOCH_MASK);
                    }
                    ep.cas(ptr, w, broken).await?;
                    self.held = None;
                }
            }
            _ => self.held = Some((w, now)),
        }
        Ok(())
    }
}

/// READ `ptr` until the copy observed is unlocked (remote spin with
/// exponential backoff; each retry is a fresh READ). Returns the page
/// bytes. Breaks an orphaned lock after the lease expires.
// protolint: role(spin-read), primitive -- one READ per attempt.
pub(crate) async fn read_unlocked(
    ep: &Endpoint,
    ptr: RemotePtr,
    page_size: usize,
) -> Result<PageBuf, VerbError> {
    let mut attempt = 0u32;
    let mut watch = LeaseWatch::new();
    // Telemetry region state. Opened on the first locked observation and
    // closed at the single exit below — explicit rather than a Drop guard
    // so a cancelled future cannot leak a half-open region.
    let mut waiting = false;
    let res = loop {
        let page = match ep.read(ptr, page_size).await {
            Ok(p) => p,
            Err(e) => break Err(e),
        };
        let w = version_lock_of(&page);
        if !lock_word::is_locked(w) {
            break Ok(page);
        }
        if !waiting {
            waiting = true;
            ep.cluster()
                .note_region(ep.client_id(), RegionKind::LockWait, true);
        }
        if let Err(e) = watch.observe(ep, ptr, w, ep.cluster().sim().now()).await {
            break Err(e);
        }
        ep.cluster().sim().clone().sleep(backoff(attempt)).await;
        attempt += 1;
    };
    if waiting {
        ep.cluster()
            .note_region(ep.client_id(), RegionKind::LockWait, false);
    }
    res
}

/// Acquire the node lock: CAS the lock word from the version observed in
/// `page` to its locked form (carrying this client's owner id); on
/// failure re-read and retry. On success, `page` holds a fresh unlocked
/// copy whose lock word has been updated to the locked value (mirroring
/// the remote state we just installed). Breaks an orphaned lock after
/// the lease expires.
// protolint: role(acquire), primitive -- the lock CAS of Listing 4.
pub(crate) async fn lock_node(
    ep: &Endpoint,
    ptr: RemotePtr,
    page: &mut PageBuf,
) -> Result<u64, VerbError> {
    let mut attempt = 0u32;
    let mut watch = LeaseWatch::new();
    // Telemetry region state. Opened on the first locked/contended
    // observation and closed at the single exit below — explicit rather
    // than a Drop guard so a cancelled future cannot leak a half-open
    // region.
    let mut waiting = false;
    let res = loop {
        let v = version_lock_of(page);
        let observed_locked = lock_word::is_locked(v);
        if !observed_locked {
            let locked = lock_word::locked_by(v, ep.client_id());
            match ep.cas(ptr, v, locked).await {
                Ok(old) if old == v => {
                    blink::node::set_version_lock(page, locked);
                    break Ok(locked);
                }
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        }
        // Lost the race (locked, or version moved): back off, refresh,
        // retry.
        if !waiting {
            waiting = true;
            ep.cluster()
                .note_region(ep.client_id(), RegionKind::LockWait, true);
        }
        if observed_locked {
            if let Err(e) = watch.observe(ep, ptr, v, ep.cluster().sim().now()).await {
                break Err(e);
            }
        }
        ep.cluster().sim().clone().sleep(backoff(attempt)).await;
        attempt += 1;
        *page = match ep.read(ptr, page.len()).await {
            Ok(p) => p,
            Err(e) => break Err(e),
        };
    };
    if waiting {
        ep.cluster()
            .note_region(ep.client_id(), RegionKind::LockWait, false);
    }
    res
}

/// Release the node lock *without* writing the page back (used when an
/// operation locked a node and then discovered it must move right).
// protolint: role(release), primitive -- the bare unlock FAA.
pub(crate) async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) -> Result<(), VerbError> {
    ep.fetch_add(ptr, 1).await?;
    Ok(())
}

/// Pass through `res`, but on failure best-effort FAA-release the lock at
/// `ptr`, which the caller *knows is still held*: every verb inside the
/// critical section either applied its effect (then there is no error) or
/// was refused with no effect (then the unlock FAA never landed), so an
/// error from the section leaves the lock bit set. Releasing here keeps a
/// retrying client from stalling a full lease on its own abandoned lock
/// (and keeps the node available to everyone else).
///
/// Only sound *inside* the critical section — after a successful unlock,
/// a stray FAA(+1) would set the lock bit on the unlocked word and create
/// an ownerless ghost lock.
///
/// A `Cancelled` client skips the attempt (its verbs are refused anyway;
/// lease-based recovery is what cleans up after the dead): the release
/// failing is always tolerable, since lease expiry remains the backstop.
// protolint: role(rescue), primitive -- discharges the lock on Err.
pub(crate) async fn release_on_error<T>(
    ep: &Endpoint,
    ptr: RemotePtr,
    res: Result<T, VerbError>,
) -> Result<T, VerbError> {
    if let Err(e) = &res {
        if *e != VerbError::Cancelled {
            let _ = unlock_only(ep, ptr).await;
        }
    }
    res
}

/// `remote_writeUnlock` (Listing 4): if the node was split, WRITE the new
/// right sibling first; WRITE the modified node in place; FETCH_AND_ADD
/// the lock word to unlock-and-version-bump.
///
/// `page` must carry the *locked* lock word (as left by [`lock_node`]) so
/// that the in-place WRITE does not transiently unlock the node; the
/// final FAA performs the unlock.
// protolint: role(commit-release), primitive -- WRITE(s) then unlock FAA.
pub(crate) async fn write_unlock(
    ep: &Endpoint,
    ptr: RemotePtr,
    page: &[u8],
    split: Option<(RemotePtr, &[u8])>,
) -> Result<(), VerbError> {
    debug_assert!(
        lock_word::is_locked(version_lock_of(page)),
        "write_unlock requires the locked lock word in the page image"
    );
    if let Some((right_ptr, right_page)) = split {
        ep.write(right_ptr, right_page).await?;
    }
    // Mutation (race, `mutations` builds under
    // NAMDEX_RACE_MUT=unlock-before-write): publish the unlock/version
    // bump *before* the in-place write-back, opening a window where a
    // contender can acquire the lock while the page bytes still race
    // with this client's deferred WRITE.
    if crate::race_mut(crate::RaceMut::UnlockBeforeWrite) {
        let prev = ep.fetch_add(ptr, 1).await?;
        // Ship the page with the post-unlock word (a plain reorder, not
        // a stuck lock): readers can now observe a bumped version whose
        // page bytes have not landed yet.
        let mut stale = page.to_vec();
        // protolint: allow(hot-panic) -- fixed [..8] prefix of a page
        // image that is at least a lock word long by construction.
        stale[..8].copy_from_slice(&prev.wrapping_add(1).to_le_bytes());
        // protolint: allow(validated-before-use) -- seeded race
        // mutation; the clean path below writes before the unlock FAA.
        ep.write(ptr, &stale).await?;
        return Ok(());
    }
    ep.write(ptr, page).await?;
    ep.fetch_add(ptr, 1).await?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink::layout::{PageLayout, Ptr, KEY_MAX};
    use blink::node::LeafNodeMut;
    use rdma_sim::{Cluster, ClusterSpec};
    use simnet::{Sim, SimDur};
    use std::cell::Cell;
    use std::rc::Rc;

    fn setup_leaf(cluster: &Cluster) -> RemotePtr {
        let layout = PageLayout::default();
        let mut page = layout.alloc_page();
        let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
        leaf.insert(5, 50).unwrap();
        let ptr = cluster.setup_alloc(0, layout.page_size() as u64);
        cluster.setup_write(ptr, &page);
        ptr
    }

    #[test]
    fn read_unlocked_spins_until_released() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        // Lock the node out-of-band.
        cluster.with_pool(0, |p| {
            p.write_u64(ptr.offset(), 1);
        });
        let reads_done = Rc::new(Cell::new(0u64));
        {
            let ep = Endpoint::new(&cluster);
            let r = reads_done.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let page = read_unlocked(&ep, ptr, 1024).await.unwrap();
                assert!(!lock_word::is_locked(version_lock_of(&page)));
                r.set(s.now().as_nanos());
            });
        }
        // Unlock after 50us.
        {
            let cluster2 = cluster.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(50)).await;
                cluster2.with_pool(0, |p| {
                    p.fetch_add(ptr.offset(), 1);
                });
            });
        }
        sim.run();
        assert!(
            reads_done.get() >= 50_000,
            "reader must spin until unlock (done at {}ns)",
            reads_done.get()
        );
        // Remote spinning cost wire traffic: several full-page reads.
        assert!(cluster.server_stats(0).onesided_ops > 5);
    }

    #[test]
    fn lock_contention_has_single_winner_at_a_time() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let in_cs = Rc::new(Cell::new(0i32));
        let max_in_cs = Rc::new(Cell::new(0i32));
        for _ in 0..8 {
            let ep = Endpoint::new(&cluster);
            let in_cs = in_cs.clone();
            let max_in_cs = max_in_cs.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let mut page = ep.read(ptr, 1024).await.unwrap();
                lock_node(&ep, ptr, &mut page).await.unwrap();
                in_cs.set(in_cs.get() + 1);
                max_in_cs.set(max_in_cs.get().max(in_cs.get()));
                s.sleep(SimDur::from_micros(3)).await; // critical section
                in_cs.set(in_cs.get() - 1);
                write_unlock(&ep, ptr, &page, None).await.unwrap();
            });
        }
        sim.run();
        assert_eq!(max_in_cs.get(), 1, "mutual exclusion violated");
        // Version advanced once per holder (owner bits of the last
        // unlocker linger above the version field).
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert_eq!(
            lock_word::version_of(word),
            8,
            "8 lock/unlock cycles bump the version once each"
        );
        assert!(!lock_word::is_locked(word));
        assert_eq!(lock_word::epoch_of(word), 0, "no lease was ever broken");
    }

    #[test]
    fn write_unlock_installs_split_sibling_first() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let right_ptr = cluster.setup_alloc(1, 1024);
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let mut page = ep.read(ptr, 1024).await.unwrap();
            lock_node(&ep, ptr, &mut page).await.unwrap();
            let layout = PageLayout::default();
            let mut right = layout.alloc_page();
            LeafNodeMut::init(&mut right, KEY_MAX, Ptr::NULL, Ptr::NULL);
            write_unlock(&ep, ptr, &page, Some((right_ptr, &right)))
                .await
                .unwrap();
        });
        sim.run();
        // Right page exists remotely and left is unlocked.
        let right = cluster.setup_read(right_ptr, 1024);
        assert_eq!(blink::node::kind_of(&right), blink::node::NodeKind::Leaf);
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert!(!lock_word::is_locked(word));
    }

    #[test]
    fn unlock_only_releases() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let mut page = ep.read(ptr, 1024).await.unwrap();
            lock_node(&ep, ptr, &mut page).await.unwrap();
            unlock_only(&ep, ptr).await.unwrap();
            // Lock again to prove it is free.
            let mut page = ep.read(ptr, 1024).await.unwrap();
            lock_node(&ep, ptr, &mut page).await.unwrap();
            write_unlock(&ep, ptr, &page, None).await.unwrap();
        });
        sim.run();
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert!(!lock_word::is_locked(word));
        assert_eq!(lock_word::version_of(word), 2);
    }

    #[test]
    fn orphaned_lock_is_broken_after_lease_expiry() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let victim = Endpoint::new(&cluster);
        let contender = Endpoint::new(&cluster);
        // Bare cluster (no index build ran): install the acquire shape
        // the builds would normally inject before arming the trigger.
        cluster.set_lock_acquire_shape(lock_word::is_acquire);
        cluster.arm_kill_on_lock_acquire(victim.client_id());
        let done = Rc::new(Cell::new(0u64));
        {
            let d = done.clone();
            let s = sim.clone();
            sim.spawn(async move {
                // The victim wins the lock and dies holding it.
                let mut page = victim.read(ptr, 1024).await.unwrap();
                lock_node(&victim, ptr, &mut page).await.unwrap();
                assert!(matches!(
                    write_unlock(&victim, ptr, &page, None).await,
                    Err(VerbError::Cancelled)
                ));
                // The contender must still get through.
                let mut page = contender.read(ptr, 1024).await.unwrap();
                lock_node(&contender, ptr, &mut page).await.unwrap();
                write_unlock(&contender, ptr, &page, None).await.unwrap();
                d.set(s.now().as_nanos());
            });
        }
        sim.run();
        let lease = ClusterSpec::default().lease_duration.as_nanos();
        assert!(
            done.get() >= lease,
            "the contender must wait out the lease ({}ns < {lease}ns)",
            done.get()
        );
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert!(!lock_word::is_locked(word));
        assert_eq!(lock_word::epoch_of(word), 1, "one lease break happened");
        // Break bumped the version once, the contender's cycle once more.
        assert_eq!(lock_word::version_of(word), 2);
    }
}
