//! The one-sided access protocol of §4.2 (Listing 4), shared by the
//! fine-grained design and the hybrid design's leaf level.
//!
//! * `remote_readLockOrRestart` → [`read_unlocked`]: READ the node; if
//!   its lock bit is set, spin by re-reading (a *remote* spinlock — each
//!   retry costs a round trip on the wire, not server CPU).
//! * `remote_upgradeToWriteLockOrRestart` → [`lock_node`]: CAS the
//!   `(version, lock-bit)` word from the observed unlocked value to its
//!   locked form; on CAS failure, re-read and retry.
//! * `remote_writeUnlock` → [`write_unlock`]: install the (optional)
//!   split sibling with a WRITE, write the modified node back, then
//!   FETCH_AND_ADD(+1) the lock word — clearing the lock bit and bumping
//!   the version in one atomic step.

use blink::layout::lock_word;
use blink::node::version_lock_of;
use rdma_sim::{Endpoint, RemotePtr};
use simnet::SimDur;

/// Remote-spin backoff: doubling from 1 µs, capped at 32 µs. Without
/// backoff, spinning clients flood the lock holder's NIC with re-READs
/// and collapse the server under contention.
fn backoff(attempt: u32) -> SimDur {
    SimDur::from_micros(1 << attempt.min(5))
}

/// READ `ptr` until the copy observed is unlocked (remote spin with
/// exponential backoff; each retry is a fresh READ). Returns the page
/// bytes.
pub(crate) async fn read_unlocked(ep: &Endpoint, ptr: RemotePtr, page_size: usize) -> Vec<u8> {
    let mut attempt = 0u32;
    loop {
        let page = ep.read(ptr, page_size).await;
        if !lock_word::is_locked(version_lock_of(&page)) {
            return page;
        }
        ep.cluster().sim().clone().sleep(backoff(attempt)).await;
        attempt += 1;
    }
}

/// Acquire the node lock: CAS the lock word from the version observed in
/// `page` to its locked form; on failure re-read and retry. On success,
/// `page` holds a fresh unlocked copy whose lock word has been updated to
/// the locked value (mirroring the remote state we just installed).
pub(crate) async fn lock_node(ep: &Endpoint, ptr: RemotePtr, page: &mut Vec<u8>) -> u64 {
    let mut attempt = 0u32;
    loop {
        let v = version_lock_of(page);
        if !lock_word::is_locked(v) {
            let locked = lock_word::locked(v);
            let old = ep.cas(ptr, v, locked).await;
            if old == v {
                blink::node::set_version_lock(page, locked);
                return locked;
            }
        }
        // Lost the race (locked, or version moved): back off, refresh,
        // retry.
        ep.cluster().sim().clone().sleep(backoff(attempt)).await;
        attempt += 1;
        *page = ep.read(ptr, page.len()).await;
    }
}

/// Release the node lock *without* writing the page back (used when an
/// operation locked a node and then discovered it must move right).
pub(crate) async fn unlock_only(ep: &Endpoint, ptr: RemotePtr) {
    ep.fetch_add(ptr, 1).await;
}

/// `remote_writeUnlock` (Listing 4): if the node was split, WRITE the new
/// right sibling first; WRITE the modified node in place; FETCH_AND_ADD
/// the lock word to unlock-and-version-bump.
///
/// `page` must carry the *locked* lock word (as left by [`lock_node`]) so
/// that the in-place WRITE does not transiently unlock the node; the
/// final FAA performs the unlock.
pub(crate) async fn write_unlock(
    ep: &Endpoint,
    ptr: RemotePtr,
    page: &[u8],
    split: Option<(RemotePtr, &[u8])>,
) {
    debug_assert!(
        lock_word::is_locked(version_lock_of(page)),
        "write_unlock requires the locked lock word in the page image"
    );
    if let Some((right_ptr, right_page)) = split {
        ep.write(right_ptr, right_page).await;
    }
    ep.write(ptr, page).await;
    ep.fetch_add(ptr, 1).await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink::layout::{PageLayout, Ptr, KEY_MAX};
    use blink::node::LeafNodeMut;
    use rdma_sim::{Cluster, ClusterSpec};
    use simnet::{Sim, SimDur};
    use std::cell::Cell;
    use std::rc::Rc;

    fn setup_leaf(cluster: &Cluster) -> RemotePtr {
        let layout = PageLayout::default();
        let mut page = layout.alloc_page();
        let mut leaf = LeafNodeMut::init(&mut page, KEY_MAX, Ptr::NULL, Ptr::NULL);
        leaf.insert(5, 50).unwrap();
        let ptr = cluster.setup_alloc(0, layout.page_size() as u64);
        cluster.setup_write(ptr, &page);
        ptr
    }

    #[test]
    fn read_unlocked_spins_until_released() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        // Lock the node out-of-band.
        cluster.with_pool(0, |p| {
            p.write_u64(ptr.offset(), 1);
        });
        let reads_done = Rc::new(Cell::new(0u64));
        {
            let ep = Endpoint::new(&cluster);
            let r = reads_done.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let page = read_unlocked(&ep, ptr, 1024).await;
                assert!(!lock_word::is_locked(version_lock_of(&page)));
                r.set(s.now().as_nanos());
            });
        }
        // Unlock after 50us.
        {
            let cluster2 = cluster.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(50)).await;
                cluster2.with_pool(0, |p| {
                    p.fetch_add(ptr.offset(), 1);
                });
            });
        }
        sim.run();
        assert!(
            reads_done.get() >= 50_000,
            "reader must spin until unlock (done at {}ns)",
            reads_done.get()
        );
        // Remote spinning cost wire traffic: several full-page reads.
        assert!(cluster.server_stats(0).onesided_ops > 5);
    }

    #[test]
    fn lock_contention_has_single_winner_at_a_time() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let in_cs = Rc::new(Cell::new(0i32));
        let max_in_cs = Rc::new(Cell::new(0i32));
        for _ in 0..8 {
            let ep = Endpoint::new(&cluster);
            let in_cs = in_cs.clone();
            let max_in_cs = max_in_cs.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let mut page = ep.read(ptr, 1024).await;
                lock_node(&ep, ptr, &mut page).await;
                in_cs.set(in_cs.get() + 1);
                max_in_cs.set(max_in_cs.get().max(in_cs.get()));
                s.sleep(SimDur::from_micros(3)).await; // critical section
                in_cs.set(in_cs.get() - 1);
                write_unlock(&ep, ptr, &page, None).await;
            });
        }
        sim.run();
        assert_eq!(max_in_cs.get(), 1, "mutual exclusion violated");
        // Version advanced once per holder.
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert_eq!(word, 2 * 8, "8 lock/unlock cycles bump version by 2 each");
        assert!(!lock_word::is_locked(word));
    }

    #[test]
    fn write_unlock_installs_split_sibling_first() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let right_ptr = cluster.setup_alloc(1, 1024);
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let mut page = ep.read(ptr, 1024).await;
            lock_node(&ep, ptr, &mut page).await;
            let layout = PageLayout::default();
            let mut right = layout.alloc_page();
            LeafNodeMut::init(&mut right, KEY_MAX, Ptr::NULL, Ptr::NULL);
            write_unlock(&ep, ptr, &page, Some((right_ptr, &right))).await;
        });
        sim.run();
        // Right page exists remotely and left is unlocked.
        let right = cluster.setup_read(right_ptr, 1024);
        assert_eq!(blink::node::kind_of(&right), blink::node::NodeKind::Leaf);
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert!(!lock_word::is_locked(word));
    }

    #[test]
    fn unlock_only_releases() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let ptr = setup_leaf(&cluster);
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            let mut page = ep.read(ptr, 1024).await;
            lock_node(&ep, ptr, &mut page).await;
            unlock_only(&ep, ptr).await;
            // Lock again to prove it is free.
            let mut page = ep.read(ptr, 1024).await;
            lock_node(&ep, ptr, &mut page).await;
            write_unlock(&ep, ptr, &page, None).await;
        });
        sim.run();
        let word = cluster.with_pool(0, |p| p.read_u64(ptr.offset()));
        assert!(!lock_word::is_locked(word));
        assert_eq!(word, 4);
    }
}
