//! Design 1 (§3): coarse-grained distribution, two-sided access.
//!
//! The key space is partitioned (range- or hash-based) across memory
//! servers; each server builds a *local* B-link tree over its keys
//! (inner and leaf nodes co-located). Compute servers ship operations to
//! the owning server as RPCs over two-sided SEND/RECV (reliable
//! connections, shared receive queues); the handler traverses the local
//! tree with optimistic lock coupling (Listing 1).
//!
//! Cost profile (Table 2): point lookups are maximally network-efficient
//! (one key up, one value down) but every operation consumes memory-server
//! CPU, so the design saturates on handler cores; under attribute-value
//! skew most requests hit one server, capping throughput at a single
//! server's resources.
//!
//! Every operation surfaces verb failures (`VerbError`) to the caller;
//! retry policy lives one level up, in [`crate::Design`].

use std::rc::Rc;

use blink::{Key, LocalTree, PageLayout, Ptr, Value, WorkStats};
use nam::{handler_cpu_time, msg, DurableTree, NamCluster, PartitionMap, ServerNode};
use rdma_sim::{Cluster, Endpoint, RpcReply, VerbError, WalRecord};
use simnet::{Sim, SimDur};

use crate::engine::RangeProgress;

/// The coarse-grained / two-sided index.
pub struct CoarseGrained {
    cluster: Cluster,
    sim: Sim,
    nodes: Vec<Rc<ServerNode>>,
    partition: PartitionMap,
}

impl CoarseGrained {
    /// Build the index: partition `items` (sorted by key) per the map and
    /// bulk-load one local tree per memory server. `fill` is the node
    /// fill factor.
    pub fn build(
        nam: &NamCluster,
        layout: PageLayout,
        partition: PartitionMap,
        items: impl Iterator<Item = (Key, Value)>,
        fill: f64,
    ) -> Rc<Self> {
        let n = nam.num_servers();
        assert_eq!(
            partition.num_servers(),
            n,
            "partition map does not match the cluster"
        );
        // CG takes no one-sided locks itself, but fault plans are shared
        // across designs: install the acquire shape so a
        // KillOnNextLockAcquire event arms cleanly here too (it simply
        // never fires — CG issues no lock CAS).
        nam.rdma
            .set_lock_acquire_shape(blink::layout::lock_word::is_acquire);
        // Partition, preserving key order within each server.
        let mut per_server: Vec<Vec<(Key, Value)>> = vec![Vec::new(); n];
        for (k, v) in items {
            per_server[partition.server_of(k)].push((k, v));
        }
        // Each index owns its per-server state (a memory server hosts
        // one ServerNode per index it serves).
        let nodes: Vec<Rc<ServerNode>> = (0..n).map(|_| Rc::new(ServerNode::new())).collect();
        for (s, data) in per_server.into_iter().enumerate() {
            nodes[s].install_tree(LocalTree::bulk_load(layout, data, fill));
            // Local trees hold the only copy of this partition's entries:
            // expose them to the transport's crash-recovery machinery
            // (wipe on crash, fuzzy-checkpoint snapshots, log replay).
            nam.rdma.register_durable_state(
                s,
                Rc::new(DurableTree::new(nodes[s].clone(), layout, fill)),
            );
        }
        // The bulk-loaded image is the recovery baseline; loading it is
        // setup, not logged work, so seal it as a fiat checkpoint.
        nam.rdma.seal_setup();
        Rc::new(CoarseGrained {
            cluster: nam.rdma.clone(),
            sim: nam.rdma.sim().clone(),
            nodes,
            partition: partition.clone(),
        })
    }

    /// The partition map in use.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Point lookup via one RPC to the owning server; co-located compute
    /// servers traverse the local tree directly (Appendix A.3).
    pub async fn lookup(&self, ep: &Endpoint, key: Key) -> Result<Option<Value>, VerbError> {
        let s = self.partition.server_of(key);
        // protolint: allow(hot-panic) -- the partition map only yields
        // server ids below the cluster size it was built with.
        let node = self.nodes[s].clone();
        let spec = self.cluster.spec().clone();
        if ep.is_local(s) {
            let (value, work) = node.with_tree(|t| t.get(key));
            ep.local_work(s, handler_cpu_time(&spec, work), msg::lookup_resp())
                .await?;
            return Ok(value);
        }
        ep.rpc(s, msg::lookup_req(), move || {
            let (value, work) = node.with_tree(|t| t.get(key));
            RpcReply {
                value,
                cpu: handler_cpu_time(&spec, work),
                resp_bytes: msg::lookup_resp(),
            }
        })
        .await
    }

    /// Range query: one RPC per server whose partition intersects
    /// `[lo, hi]` (hash partitioning broadcasts to all servers — the
    /// `H·P·S` term of Table 2). Results are merged in key order.
    pub async fn range(
        &self,
        ep: &Endpoint,
        lo: Key,
        hi: Key,
    ) -> Result<Vec<(Key, Value)>, VerbError> {
        let progress = RangeProgress::default();
        self.range_with(ep, lo, hi, &progress).await
    }

    /// One attempt of [`CoarseGrained::range`] under a retry layer:
    /// `progress` (shared across attempts, created per *operation*)
    /// records which servers already shipped their rows, so a retried
    /// hash-partition *broadcast* skips them instead of re-RPCing every
    /// server — partial work survives the failed attempt and telemetry
    /// counts each server once. Range partitions re-query their (few)
    /// covering servers per attempt, unchanged.
    pub async fn range_with(
        &self,
        ep: &Endpoint,
        lo: Key,
        hi: Key,
        progress: &RangeProgress,
    ) -> Result<Vec<(Key, Value)>, VerbError> {
        let servers = self.partition.servers_for_range(lo, hi);
        let broadcast = matches!(self.partition, PartitionMap::Hash { .. });
        if !broadcast {
            progress.reset();
        }
        // protolint: loop(partition) -- one RPC per covering partition;
        // trip count scales with the range width, not the tree height.
        for s in servers {
            if progress.is_done(s) {
                continue;
            }
            // protolint: allow(hot-panic) -- servers_for_range only
            // yields ids below the cluster size the map was built with.
            let node = self.nodes[s].clone();
            let spec = self.cluster.spec().clone();
            if ep.is_local(s) {
                let mut rows = Vec::new();
                let (work, page_size) =
                    node.with_tree(|t| (t.range(lo, hi, &mut rows), t.layout().page_size()));
                let bytes = msg::range_resp_pages(work.leaves_scanned as usize, page_size);
                ep.local_work(s, handler_cpu_time(&spec, work), bytes)
                    .await?;
                progress.record(s, rows);
                continue;
            }
            let part = ep
                .rpc(s, msg::range_req(), move || {
                    let mut rows = Vec::new();
                    let (work, page_size) =
                        node.with_tree(|t| (t.range(lo, hi, &mut rows), t.layout().page_size()));
                    // The handler ships the qualifying leaf pages (§6.1).
                    let resp = msg::range_resp_pages(work.leaves_scanned as usize, page_size);
                    RpcReply {
                        value: rows,
                        cpu: handler_cpu_time(&spec, work),
                        resp_bytes: resp,
                    }
                })
                .await?;
            progress.record(s, part);
        }
        // Hash partitions interleave in key space: merge re-sorts.
        Ok(progress.merge(broadcast))
    }

    /// Handler body of an insert: applies
    /// [`crate::engine::apply_insert_local`] — the engine's exactly-once
    /// absorption rule for retried inserts, enforced server-side because
    /// CG ships whole operations as RPCs. Returns the leaf to lock
    /// (none when the retry was absorbed) and the CPU work to charge.
    fn insert_apply(
        node: &ServerNode,
        key: Key,
        value: Value,
        retrying: bool,
    ) -> (Option<Ptr>, WorkStats) {
        node.with_tree(|t| crate::engine::apply_insert_local(t, key, value, retrying))
    }

    /// Insert via one RPC; the handler takes the leaf page lock (local
    /// CAS) and its spin-wait occupies the handler core. `retrying`
    /// marks attempts after the first so the handler can absorb a
    /// duplicate from a lost-response retry (see `Self::insert_apply`).
    pub async fn insert(
        &self,
        ep: &Endpoint,
        key: Key,
        value: Value,
        retrying: bool,
    ) -> Result<(), VerbError> {
        let s = self.partition.server_of(key);
        // protolint: allow(hot-panic) -- the partition map only yields
        // server ids below the cluster size it was built with.
        let node = self.nodes[s].clone();
        let spec = self.cluster.spec().clone();
        let sim = self.sim.clone();
        if ep.is_local(s) {
            let (leaf, work) = Self::insert_apply(&node, key, value, retrying);
            if leaf.is_some() {
                // The tree mutated: log it before the ack can form.
                // Absorbed retries log nothing — the prior attempt's
                // record went durable before its (lost) response left.
                self.cluster
                    .wal_append(s, WalRecord::TreeInsert { key, value });
            }
            let wait = match leaf {
                Some(leaf) => node
                    .locks
                    .acquire(leaf.raw(), sim.now(), spec.leaf_lock_hold),
                None => SimDur::ZERO,
            };
            let busy = handler_cpu_time(&spec, work) + spec.cpu_insert_extra + wait;
            ep.local_work(s, busy, msg::ack()).await?;
            return ep.durability_barrier(s).await;
        }
        let cluster = self.cluster.clone();
        ep.rpc(s, msg::insert_req(), move || {
            let (leaf, work) = Self::insert_apply(&node, key, value, retrying);
            if leaf.is_some() {
                cluster.wal_append(s, WalRecord::TreeInsert { key, value });
            }
            let wait = match leaf {
                Some(leaf) => node
                    .locks
                    .acquire(leaf.raw(), sim.now(), spec.leaf_lock_hold),
                None => SimDur::ZERO,
            };
            RpcReply {
                value: (),
                cpu: handler_cpu_time(&spec, work) + spec.cpu_insert_extra + wait,
                resp_bytes: msg::ack(),
            }
        })
        .await
    }

    /// Tombstone delete via one RPC (delete bit per entry, §3.2); space
    /// is reclaimed by the per-server epoch GC.
    pub async fn delete(&self, ep: &Endpoint, key: Key) -> Result<bool, VerbError> {
        let s = self.partition.server_of(key);
        // protolint: allow(hot-panic) -- the partition map only yields
        // server ids below the cluster size it was built with.
        let node = self.nodes[s].clone();
        let spec = self.cluster.spec().clone();
        let sim = self.sim.clone();
        if ep.is_local(s) {
            let (deleted, leaf, work) = node.with_tree(|t| t.delete_at_leaf(key));
            if deleted {
                self.cluster.wal_append(s, WalRecord::TreeDelete { key });
            }
            let wait = node
                .locks
                .acquire(leaf.raw(), sim.now(), spec.leaf_lock_hold);
            let busy = handler_cpu_time(&spec, work) + spec.cpu_insert_extra + wait;
            ep.local_work(s, busy, msg::ack()).await?;
            ep.durability_barrier(s).await?;
            return Ok(deleted);
        }
        let cluster = self.cluster.clone();
        ep.rpc(s, msg::delete_req(), move || {
            let (deleted, leaf, work) = node.with_tree(|t| t.delete_at_leaf(key));
            if deleted {
                cluster.wal_append(s, WalRecord::TreeDelete { key });
            }
            // Deletes lock the leaf like inserts do (§3.2).
            let wait = node
                .locks
                .acquire(leaf.raw(), sim.now(), spec.leaf_lock_hold);
            RpcReply {
                value: deleted,
                cpu: handler_cpu_time(&spec, work) + spec.cpu_insert_extra + wait,
                resp_bytes: msg::ack(),
            }
        })
        .await
    }

    /// Per-server state handles (used by the GC driver).
    pub fn nodes(&self) -> &[Rc<ServerNode>] {
        &self.nodes
    }

    /// The cluster this index lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::ClusterSpec;
    use std::cell::RefCell;

    fn build_index(sim: &Sim, n_keys: u64) -> (NamCluster, Rc<CoarseGrained>) {
        let nam = NamCluster::new(sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), n_keys * 8);
        let items = (0..n_keys).map(|i| (i * 8, i));
        let idx = CoarseGrained::build(&nam, PageLayout::default(), partition, items, 0.7);
        (nam, idx)
    }

    #[test]
    fn lookup_across_partitions() {
        let sim = Sim::new();
        let (nam, idx) = build_index(&sim, 10_000);
        let ep = Endpoint::new(&nam.rdma);
        let results = Rc::new(RefCell::new(Vec::new()));
        {
            let results = results.clone();
            sim.spawn(async move {
                for i in [0u64, 17, 2_500, 5_000, 9_999] {
                    let got = idx.lookup(&ep, i * 8).await.unwrap();
                    results.borrow_mut().push(got);
                }
                let got = idx.lookup(&ep, 3).await.unwrap();
                results.borrow_mut().push(got); // absent
            });
        }
        sim.run();
        let r = results.borrow();
        assert_eq!(
            *r,
            vec![
                Some(0),
                Some(17),
                Some(2_500),
                Some(5_000),
                Some(9_999),
                None
            ]
        );
        // Requests were spread over all 4 servers.
        let rpcs: Vec<u64> = (0..4).map(|s| nam.rdma.server_stats(s).rpcs).collect();
        assert!(rpcs.iter().all(|&c| c >= 1), "rpc spread: {rpcs:?}");
    }

    #[test]
    fn range_spans_partition_boundary() {
        let sim = Sim::new();
        let (nam, idx) = build_index(&sim, 10_000);
        let ep = Endpoint::new(&nam.rdma);
        let out = Rc::new(RefCell::new(Vec::new()));
        {
            let out = out.clone();
            sim.spawn(async move {
                // Keys 2400*8 .. 2599*8 straddle the server 0/1 boundary
                // (boundary at 2500*8).
                let rows = idx.range(&ep, 2400 * 8, 2599 * 8).await.unwrap();
                out.borrow_mut().extend(rows);
            });
        }
        sim.run();
        let rows = out.borrow();
        assert_eq!(rows.len(), 200);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        assert_eq!(rows[0], (2400 * 8, 2400));
        assert_eq!(rows[199], (2599 * 8, 2599));
    }

    #[test]
    fn hash_partition_broadcast_range() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::hash(nam.num_servers());
        let items = (0..1000u64).map(|i| (i * 8, i));
        let idx = CoarseGrained::build(&nam, PageLayout::default(), partition, items, 0.7);
        let ep = Endpoint::new(&nam.rdma);
        let out = Rc::new(RefCell::new(Vec::new()));
        {
            let out = out.clone();
            sim.spawn(async move {
                let rows = idx.range(&ep, 80, 160).await.unwrap();
                out.borrow_mut().extend(rows);
            });
        }
        sim.run();
        let rows = out.borrow();
        assert_eq!(rows.len(), 11); // keys 80,88,...,160
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        // Broadcast: every server answered one RPC.
        for s in 0..4 {
            assert_eq!(nam.rdma.server_stats(s).rpcs, 1);
        }
    }

    #[test]
    fn insert_then_lookup_and_delete() {
        let sim = Sim::new();
        let (nam, idx) = build_index(&sim, 1000);
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            idx.insert(&ep, 41, 999, false).await.unwrap(); // odd key: fresh
            assert_eq!(idx.lookup(&ep, 41).await.unwrap(), Some(999));
            assert!(idx.delete(&ep, 41).await.unwrap());
            assert_eq!(idx.lookup(&ep, 41).await.unwrap(), None);
            assert!(!idx.delete(&ep, 41).await.unwrap(), "already deleted");
        });
        sim.run();
    }

    #[test]
    fn skewed_partition_concentrates_rpcs() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let n_keys = 10_000u64;
        let partition = PartitionMap::range_fractions(&[0.80, 0.12, 0.05, 0.03], n_keys * 8);
        let items = (0..n_keys).map(|i| (i * 8, i));
        let idx = CoarseGrained::build(&nam, PageLayout::default(), partition, items, 0.7);
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            // Uniform requests over the key space.
            let mut rng = simnet::rng::DetRng::seed_from_u64(1);
            for _ in 0..400 {
                let k = rng.next_u64_below(n_keys) * 8;
                idx.lookup(&ep, k).await.unwrap();
            }
        });
        sim.run();
        let s0 = nam.rdma.server_stats(0).rpcs as f64;
        assert!(
            (s0 / 400.0 - 0.80).abs() < 0.06,
            "~80% of requests must hit server 0, got {}",
            s0 / 400.0
        );
    }

    #[test]
    fn concurrent_inserts_preserve_all_entries() {
        let sim = Sim::new();
        let (nam, idx) = build_index(&sim, 1000);
        for c in 0..10u64 {
            let idx = idx.clone();
            let ep = Endpoint::new(&nam.rdma);
            sim.spawn(async move {
                for i in 0..50u64 {
                    // Odd keys, unique per client.
                    idx.insert(&ep, (c * 50 + i) * 16 + 1, c, false)
                        .await
                        .unwrap();
                }
            });
        }
        sim.run();
        // Verify every insert landed.
        let ep = Endpoint::new(&nam.rdma);
        let idx2 = idx.clone();
        let count = Rc::new(std::cell::Cell::new(0u32));
        {
            let count = count.clone();
            sim.spawn(async move {
                for c in 0..10u64 {
                    for i in 0..50u64 {
                        if idx2.lookup(&ep, (c * 50 + i) * 16 + 1).await.unwrap() == Some(c) {
                            count.set(count.get() + 1);
                        }
                    }
                }
            });
        }
        sim.run();
        assert_eq!(count.get(), 500);
    }

    #[test]
    fn retried_insert_is_absorbed_not_duplicated() {
        // A lost-response retry re-sends the insert RPC with
        // `retrying = true`; the handler must detect the live duplicate
        // and absorb it instead of inserting a second entry.
        let sim = Sim::new();
        let (nam, idx) = build_index(&sim, 100);
        let ep = Endpoint::new(&nam.rdma);
        let idx2 = idx.clone();
        sim.spawn(async move {
            idx2.insert(&ep, 41, 999, false).await.unwrap();
            // Simulated retry of the same pair after a lost ack.
            idx2.insert(&ep, 41, 999, true).await.unwrap();
            let rows = idx2.range(&ep, 41, 47).await.unwrap();
            assert_eq!(rows, vec![(41, 999)], "duplicate must be absorbed");
            // A *fresh* insert under `retrying` (no prior effect) must
            // still land.
            idx2.insert(&ep, 43, 7, true).await.unwrap();
            let rows = idx2.range(&ep, 41, 47).await.unwrap();
            assert_eq!(rows, vec![(41, 999), (43, 7)]);
        });
        sim.run();
    }
}
