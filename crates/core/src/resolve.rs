//! Page resolution: how a traversal turns a node reference into bytes.
//!
//! The three designs share one B-link traversal core ([`crate::engine`])
//! and differ only in *where the descent starts* and *how a node
//! reference becomes page bytes*. That difference is the [`NodeSource`]
//! trait:
//!
//! * fine-grained — [`start`](NodeSource::start) is the published root
//!   pointer and [`load`](NodeSource::load) is a one-sided READ, so the
//!   client descends through remotely stored inner nodes itself;
//! * hybrid — [`start`](NodeSource::start) is an upper-level RPC that
//!   hands back the covering leaf's remote pointer, and
//!   [`load`](NodeSource::load) READs only chain pages (leaves and
//!   heads);
//! * coarse-grained — there is no client-side page resolution at all
//!   (whole operations ship to the owning server as RPCs), so CG plugs
//!   into the engine's retry layer only, not into [`NodeSource`].
//!
//! Client-side caching (Appendix A.4) is a *decorator* over any
//! [`NodeSource`] — [`Cached`] — so it applies to the real
//! `lookup/range/insert/delete` path of both pointer-resolving designs
//! instead of living in a bench-only side path. What gets cached follows
//! the source's [`CachePolicy`]: FG caches inner pages by remote
//! pointer; Hybrid caches resolved leaf routes by covering high key
//! (its upper levels are server-local, so the RPC's answer *is* the
//! cacheable artifact).
//!
//! ## Validation rule
//!
//! A cache hit is validated the same way every optimistic read in the
//! B-link protocol is: by the downstream fence check. A stale hit can
//! only route the descent too far *left* (splits move keys right and
//! leaves are never merged or reused — pools are bump allocators and GC
//! tombstones in place), where `covers(key)` fails against the fresh
//! page and the descent self-corrects through sibling chases. Every such
//! detection invalidates the stale entry (the fresh copy's bumped
//! version replaces it on the next miss), and a server restart flushes
//! the whole cache via a restart-epoch check before any hit is served.

use blink::node::{kind_of, NodeKind};
use blink::{Key, PageLayout};
use rdma_sim::{Cluster, Endpoint, FenceKind, PageBuf, RemotePtr, VerbError};

use crate::cache::CacheLayer;

/// Which index operation a descent serves. Sources that resolve the
/// start of a descent over the wire (the hybrid's upper-level RPC) need
/// it to size the request message; pure pointer sources ignore it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpAccess {
    /// Point lookup.
    Lookup,
    /// Range scan (descends to the low end of the interval).
    Range,
    /// Insert (descends to the covering leaf for a locked install).
    Insert,
    /// Tombstone delete.
    Delete,
}

/// What a [`Cached`] decorator over a source may cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Cache inner pages by remote pointer: the client descends through
    /// remotely stored inner nodes, so a cached inner level saves one
    /// round trip per descent (fine-grained).
    InnerPages,
    /// Cache resolved `high_key → leaf pointer` routes: the upper levels
    /// are server-local and never READ by the client, so the cacheable
    /// artifact is the resolution RPC's answer (hybrid).
    Routes,
}

/// How a traversal turns a node reference into page bytes.
///
/// Implemented by the fine-grained and hybrid designs; consumed
/// generically by [`crate::engine`]'s descent/SMO core and wrappable by
/// [`Cached`]. The two hook methods are cache feedback — default no-ops
/// so plain sources pay nothing.
#[allow(async_fn_in_trait)] // single-threaded DES: no Send bounds wanted
pub trait NodeSource {
    /// Whether the client itself descends from `start` through inner
    /// levels (fine-grained) or `start` already resolves to the leaf
    /// chain (hybrid). Write operations use this to decide between a
    /// path-recording descent and a direct leaf lock.
    const CLIENT_DESCENT: bool;

    /// Page geometry of every node this source resolves.
    fn layout(&self) -> PageLayout;

    /// What a [`Cached`] wrapper over this source caches.
    fn cache_policy(&self) -> CachePolicy;

    /// Where the descent for `key` begins.
    async fn start(
        &self,
        ep: &Endpoint,
        key: Key,
        access: OpAccess,
    ) -> Result<RemotePtr, VerbError>;

    /// Current bytes of the page at `ptr` (spins past locked copies).
    async fn load(&self, ep: &Endpoint, ptr: RemotePtr) -> Result<PageBuf, VerbError>;

    /// Feedback: the descent for `key` ended at the covering leaf
    /// `ptr` whose bytes are `page`.
    fn note_leaf(&self, _ep: &Endpoint, _key: Key, _ptr: RemotePtr, _page: &[u8]) {}

    /// Feedback: routing for `key` out of `origin` proved stale (the
    /// reached node no longer covers the key and the descent had to
    /// chase a sibling). `origin` may be NULL when the stale step has no
    /// page of its own (a cached route, the descent's start).
    fn invalidate(&self, _ep: &Endpoint, _key: Key, _origin: RemotePtr) {}
}

/// Caching decorator over any [`NodeSource`] (Appendix A.4 made a
/// first-class engine layer).
///
/// With no cache attached this is an exact pass-through — same verbs,
/// same awaits — so uncached configurations stay digest-identical to the
/// undecorated source. With a [`CacheLayer`], hits skip the wire
/// according to the inner source's [`CachePolicy`] and the module-level
/// validation rule applies.
pub struct Cached<'a, S> {
    inner: &'a S,
    cache: Option<&'a CacheLayer>,
}

impl<'a, S: NodeSource> Cached<'a, S> {
    /// Wrap `inner`; `cache = None` disables caching (pass-through).
    pub fn new(inner: &'a S, cache: Option<&'a CacheLayer>) -> Self {
        Cached { inner, cache }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        self.inner
    }

    /// The attached cache layer, if any.
    pub(crate) fn cache_layer(&self) -> Option<&'a CacheLayer> {
        self.cache
    }
}

impl<S: NodeSource> NodeSource for Cached<'_, S> {
    const CLIENT_DESCENT: bool = S::CLIENT_DESCENT;

    fn layout(&self) -> PageLayout {
        self.inner.layout()
    }

    fn cache_policy(&self) -> CachePolicy {
        self.inner.cache_policy()
    }

    async fn start(
        &self,
        ep: &Endpoint,
        key: Key,
        access: OpAccess,
    ) -> Result<RemotePtr, VerbError> {
        if let Some(cache) = self.cache {
            // Mutation (race, `mutations` builds under
            // NAMDEX_RACE_MUT=cached-no-fence): skip the restart-epoch
            // fence, serving cached routes against a rebuilt pool.
            if !crate::race_mut(crate::RaceMut::CachedNoFence) {
                cache.flush_if_restarted();
                crate::note_epoch_check(ep);
            }
            if self.inner.cache_policy() == CachePolicy::Routes {
                if let Some(ptr) = cache.route_hit(ep.client_id(), key) {
                    crate::note_fence(ep, FenceKind::CachedUse, ptr);
                    return Ok(ptr);
                }
            }
        }
        self.inner.start(ep, key, access).await
    }

    async fn load(&self, ep: &Endpoint, ptr: RemotePtr) -> Result<PageBuf, VerbError> {
        let cache = match self.cache {
            Some(c) if self.inner.cache_policy() == CachePolicy::InnerPages => c,
            _ => return self.inner.load(ep, ptr).await,
        };
        // Mutation (race): same elision as in `start` — see above.
        if !crate::race_mut(crate::RaceMut::CachedNoFence) {
            cache.flush_if_restarted();
            crate::note_epoch_check(ep);
        }
        if let Some(page) = cache.page_hit(ep.client_id(), ptr) {
            crate::note_fence(ep, FenceKind::CachedUse, ptr);
            return Ok(PageBuf::detached(page));
        }
        let page = self.inner.load(ep, ptr).await?;
        if kind_of(&page) == NodeKind::Inner {
            cache.put_page(ep.client_id(), ptr, page.to_vec());
        }
        Ok(page)
    }

    fn note_leaf(&self, ep: &Endpoint, key: Key, ptr: RemotePtr, page: &[u8]) {
        if let Some(cache) = self.cache {
            if self.inner.cache_policy() == CachePolicy::Routes {
                cache.note_route(ep.client_id(), key, ptr, page);
            }
        }
        self.inner.note_leaf(ep, key, ptr, page);
    }

    fn invalidate(&self, ep: &Endpoint, key: Key, origin: RemotePtr) {
        if let Some(cache) = self.cache {
            match self.inner.cache_policy() {
                CachePolicy::InnerPages => cache.drop_page(ep.client_id(), origin),
                CachePolicy::Routes => cache.drop_route(ep.client_id(), key),
            }
        }
        self.inner.invalidate(ep, key, origin);
    }
}

/// Synchronous, untimed view of the same page-resolution surface, for
/// control-path consumers — the sanitizer's structural walks and head
/// maintenance — that read pages through `Cluster::setup_read` with no
/// simulated cost. Keyed off the same layout as the timed source so walk
/// code and engine code agree on page geometry by construction.
pub struct SetupSource {
    cluster: Cluster,
    layout: PageLayout,
}

impl SetupSource {
    /// A setup-path view over `cluster` with `layout` page geometry.
    pub fn new(cluster: &Cluster, layout: PageLayout) -> Self {
        SetupSource {
            cluster: cluster.clone(),
            layout,
        }
    }

    /// Page geometry.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// The cluster read through.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current bytes of the page at `ptr`, untimed.
    pub fn load(&self, ptr: RemotePtr) -> Vec<u8> {
        self.cluster.setup_read(ptr, self.layout.page_size())
    }
}
