//! Design 3 (§5): hybrid scheme.
//!
//! Upper levels (root + inner nodes) are partitioned coarse-grained —
//! each memory server holds a local tree over the leaf high keys in its
//! key range, mapping them to leaf remote pointers. The leaf level is
//! distributed fine-grained: leaves are scattered round-robin over *all*
//! servers (with optional head nodes), so even under attribute-value
//! skew leaf traffic spreads across the aggregated bandwidth.
//!
//! Access combines both protocols: a two-sided RPC traverses the upper
//! levels and returns only the covering leaf's remote pointer (§5.2);
//! the compute server then reads/updates the leaf with the one-sided
//! protocol of §4. The one-sided leaf protocol itself lives in
//! [`crate::engine`]; this module configures it: the [`NodeSource`] here
//! answers "the descent starts where the upper-level RPC says, bytes
//! come from one-sided READs of chain pages", and the engine's
//! `TreeWriter` hook reports leaf splits back over a second RPC that
//! installs the new separator into the upper levels.
//!
//! With `cache_capacity` set, resolved `high_key → leaf pointer` routes
//! are cached client-side so repeat descents skip the resolution RPC,
//! under the validation rule documented in [`crate::resolve`].
//!
//! Every operation surfaces verb failures (`VerbError`) to the caller;
//! retry policy lives one level up, in [`crate::Design`].

use std::cell::Cell;
use std::rc::Rc;

use blink::{Key, LocalTree, PageLayout, Value};
use nam::{handler_cpu_time, msg, DurableTree, NamCluster, PartitionMap, ServerNode};
use rdma_sim::{Cluster, Endpoint, RemotePtr, RpcReply, VerbError, WalRecord};
use simnet::Sim;

use crate::cache::CacheLayer;
use crate::engine::{self, TreeWriter};
use crate::fg::{build_leaf_level, FgConfig};
use crate::onesided::read_unlocked;
use crate::resolve::{CachePolicy, Cached, NodeSource, OpAccess, SetupSource};

/// The hybrid index.
pub struct Hybrid {
    cluster: Cluster,
    sim: Sim,
    nodes: Vec<Rc<ServerNode>>,
    partition: PartitionMap,
    layout: PageLayout,
    /// Start of the fine-grained leaf chain.
    first: Cell<RemotePtr>,
    /// Round-robin cursor for new leaf placement.
    alloc_rr: Cell<usize>,
    cache: Option<CacheLayer>,
}

impl Hybrid {
    /// Build the index: a fine-grained leaf chain over all servers, plus
    /// per-server upper-level trees mapping leaf high keys (within the
    /// server's partition) to leaf remote pointers.
    pub fn build(
        nam: &NamCluster,
        cfg: FgConfig,
        partition: PartitionMap,
        items: impl Iterator<Item = (Key, Value)>,
    ) -> Rc<Self> {
        let n = nam.num_servers();
        assert_eq!(partition.num_servers(), n, "partition map mismatch");
        assert!(
            matches!(partition, PartitionMap::Range { .. }),
            "hybrid upper levels require range partitioning (high keys \
             must be routable)"
        );
        // The leaf level uses blink's one-sided lock protocol; teach the
        // transport's fault injector what an acquire CAS looks like.
        nam.rdma
            .set_lock_acquire_shape(blink::layout::lock_word::is_acquire);
        let rr = Cell::new(0);
        let leaf_level = build_leaf_level(&nam.rdma, &cfg, items, &rr);

        // Partition (high_key -> leaf ptr) pairs by the high key.
        let mut per_server: Vec<Vec<(Key, Value)>> = vec![Vec::new(); n];
        for &(high, ptr) in &leaf_level.leaves {
            per_server[partition.server_of(high)].push((high, ptr.raw()));
        }
        // Each index owns its per-server upper-level state.
        let nodes: Vec<Rc<ServerNode>> = (0..n).map(|_| Rc::new(ServerNode::new())).collect();
        for (s, pairs) in per_server.into_iter().enumerate() {
            nodes[s].install_tree(LocalTree::bulk_load(cfg.layout, pairs, cfg.fill));
            // The upper levels live outside the pool: expose them to the
            // transport's crash-recovery machinery. (Leaves live *in* the
            // pool and recover from PoolWrite/PoolAllocTo records.)
            nam.rdma.register_durable_state(
                s,
                Rc::new(DurableTree::new(nodes[s].clone(), cfg.layout, cfg.fill)),
            );
        }
        // Seal the bulk-loaded leaves + upper levels as the fiat
        // recovery baseline; setup writes are never replayed.
        nam.rdma.seal_setup();

        Rc::new(Hybrid {
            cluster: nam.rdma.clone(),
            sim: nam.rdma.sim().clone(),
            nodes,
            partition,
            layout: cfg.layout,
            first: Cell::new(leaf_level.first),
            alloc_rr: rr,
            cache: cfg
                .cache_capacity
                .map(|cap| CacheLayer::new(&nam.rdma, cap)),
        })
    }

    fn ps(&self) -> usize {
        self.layout.page_size()
    }

    /// The partition map of the upper levels.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Start of the leaf chain.
    pub fn first(&self) -> RemotePtr {
        self.first.get()
    }

    /// Round-robin placement cursor, shared with wrappers (the learned
    /// design) that allocate split pages on this tree's behalf.
    pub(crate) fn alloc_cursor(&self) -> &Cell<usize> {
        &self.alloc_rr
    }

    /// Page geometry.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// The cluster this index lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Per-server upper-level state (for the GC driver).
    pub fn nodes(&self) -> &[Rc<ServerNode>] {
        &self.nodes
    }

    /// The client-side route cache, if `cache_capacity` enabled one.
    pub fn cache(&self) -> Option<&CacheLayer> {
        self.cache.as_ref()
    }

    /// The engine's view of this index: a (possibly caching) node
    /// source over the upper-level RPC handoff.
    pub(crate) fn source(&self) -> Cached<'_, Hybrid> {
        Cached::new(self, self.cache.as_ref())
    }

    /// Untimed page-resolution view for control-path walks (sanitizer).
    pub fn setup_source(&self) -> SetupSource {
        SetupSource::new(&self.cluster, self.layout)
    }

    /// RPC the upper levels for the leaf covering `key` (§5.2: the RPC
    /// returns only the remote pointer). Falls back to successive
    /// servers when the covering leaf's high key lives in a later
    /// partition.
    async fn leaf_ptr_for(
        &self,
        ep: &Endpoint,
        key: Key,
        req_bytes: usize,
    ) -> Result<RemotePtr, VerbError> {
        let mut s = self.partition.server_of(key);
        // protolint: loop(probe) -- falls through to the next partition
        // only when the covering leaf's high key lives there; the
        // rightmost leaf (high key = +inf) bounds the probe.
        loop {
            // protolint: allow(hot-panic) -- the partition map only
            // yields ids below the cluster size, and the trailing
            // assert! bounds the fall-through before the next index.
            let node = self.nodes[s].clone();
            let spec = self.cluster.spec().clone();
            let found: Option<u64> = if ep.is_local(s) {
                // Co-located fast path (Appendix A.3).
                let (res, work) = node.with_tree(|t| t.ceiling(key));
                ep.local_work(s, handler_cpu_time(&spec, work), msg::leaf_ptr_resp())
                    .await?;
                res.map(|(_, ptr_raw)| ptr_raw)
            } else {
                ep.rpc(s, req_bytes, move || {
                    let (res, work) = node.with_tree(|t| t.ceiling(key));
                    RpcReply {
                        value: res.map(|(_, ptr_raw)| ptr_raw),
                        cpu: handler_cpu_time(&spec, work),
                        resp_bytes: msg::leaf_ptr_resp(),
                    }
                })
                .await?
            };
            if let Some(raw) = found {
                return Ok(RemotePtr::from_raw(raw));
            }
            s += 1;
            assert!(
                s < self.nodes.len(),
                "rightmost leaf (high key = +inf) must be registered"
            );
        }
    }

    /// Point lookup: RPC for the leaf pointer, then one-sided leaf READ.
    pub async fn lookup(&self, ep: &Endpoint, key: Key) -> Result<Option<Value>, VerbError> {
        engine::lookup(&self.source(), ep, key).await
    }

    /// Range query: RPC for the starting leaf, then a fine-grained chain
    /// scan with head-node prefetch. A concurrent split may route us to
    /// a leaf left of `lo`'s final position; the chain scan handles that
    /// by skipping non-matching keys.
    pub async fn range(
        &self,
        ep: &Endpoint,
        lo: Key,
        hi: Key,
    ) -> Result<Vec<(Key, Value)>, VerbError> {
        engine::range(&self.source(), ep, lo, hi).await
    }

    /// Insert: RPC for the leaf pointer, one-sided leaf install (§4
    /// protocol); on a split, report the new leaf back over RPC so the
    /// memory server installs it into the upper levels (§5.2). See
    /// `engine::insert` for the exactly-once retry-absorption
    /// contract under [`crate::Design`].
    pub async fn insert(&self, ep: &Endpoint, key: Key, value: Value) -> Result<(), VerbError> {
        engine::insert(&self.source(), ep, key, value, false).await
    }

    /// Tombstone-delete `key` with the one-sided leaf protocol.
    pub async fn delete(&self, ep: &Endpoint, key: Key) -> Result<bool, VerbError> {
        engine::delete(&self.source(), ep, key).await
    }
}

impl NodeSource for Hybrid {
    /// The upper levels are server-local: `start` already resolves to
    /// the leaf chain, the client never descends inner levels.
    const CLIENT_DESCENT: bool = false;

    fn layout(&self) -> PageLayout {
        self.layout
    }

    fn cache_policy(&self) -> CachePolicy {
        CachePolicy::Routes
    }

    async fn start(
        &self,
        ep: &Endpoint,
        key: Key,
        access: OpAccess,
    ) -> Result<RemotePtr, VerbError> {
        let req_bytes = match access {
            OpAccess::Lookup => msg::lookup_req(),
            OpAccess::Range => msg::range_req(),
            OpAccess::Insert => msg::insert_req(),
            OpAccess::Delete => msg::delete_req(),
        };
        self.leaf_ptr_for(ep, key, req_bytes).await
    }

    async fn load(&self, ep: &Endpoint, ptr: RemotePtr) -> Result<rdma_sim::PageBuf, VerbError> {
        read_unlocked(ep, ptr, self.ps()).await
    }
}

impl TreeWriter for Hybrid {
    async fn alloc(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError> {
        engine::rr_alloc(ep, &self.alloc_rr, self.ps()).await
    }

    /// Upper-level registration of a committed leaf split. Order
    /// matters: first map `sep -> left` (new entry), then repoint
    /// `old_high -> right`; in the interim, stale routing is corrected
    /// by B-link sibling chases. (A committed split whose registration
    /// RPC then fails stays reachable the same way: routing lands on a
    /// leaf to its left and chases correct it.)
    async fn complete_split(
        &self,
        ep: &Endpoint,
        _path: Vec<RemotePtr>,
        sep: Key,
        left: RemotePtr,
        right: RemotePtr,
        old_high: Key,
    ) -> Result<(), VerbError> {
        let s_new = self.partition.server_of(sep);
        let s_old = self.partition.server_of(old_high);
        if s_new == s_old {
            // protolint: allow(hot-panic) -- the partition map only
            // yields ids below the cluster size it was built with.
            let node = self.nodes[s_new].clone();
            let spec = self.cluster.spec().clone();
            let sim = self.sim.clone();
            let cluster = self.cluster.clone();
            let (left_raw, right_raw) = (left.raw(), right.raw());
            ep.rpc(s_new, msg::install_leaf_req(), move || {
                let (leaf_page, repointed, mut work) = node.with_tree(|t| {
                    let (leaf, w) = t.insert_at_leaf(sep, left_raw);
                    let (repointed, w2) = t.update_value(old_high, right_raw);
                    let mut w = w;
                    w.absorb(w2);
                    (leaf, repointed, w)
                });
                // Log the upper-level mutations before the ack can form.
                cluster.wal_append(
                    s_new,
                    WalRecord::TreeInsert {
                        key: sep,
                        value: left_raw,
                    },
                );
                if repointed {
                    cluster.wal_append(
                        s_new,
                        WalRecord::TreeUpsert {
                            key: old_high,
                            value: right_raw,
                        },
                    );
                }
                work.entries_scanned += 1;
                let wait = node
                    .locks
                    .acquire(leaf_page.raw(), sim.now(), spec.leaf_lock_hold);
                // Upper levels carry only their share of write overhead:
                // leaf writes and leaf GC are client-side in the hybrid.
                RpcReply {
                    value: (),
                    cpu: handler_cpu_time(&spec, work) + spec.cpu_insert_extra / 4 + wait,
                    resp_bytes: msg::ack(),
                }
            })
            .await?;
        } else {
            // Cross-partition: two RPCs, new entry first.
            // protolint: allow(hot-panic) -- the partition map only
            // yields ids below the cluster size it was built with.
            let node = self.nodes[s_new].clone();
            let spec = self.cluster.spec().clone();
            let sim = self.sim.clone();
            let cluster = self.cluster.clone();
            let left_raw = left.raw();
            ep.rpc(s_new, msg::install_leaf_req(), move || {
                let (leaf_page, work) = node.with_tree(|t| t.insert_at_leaf(sep, left_raw));
                cluster.wal_append(
                    s_new,
                    WalRecord::TreeInsert {
                        key: sep,
                        value: left_raw,
                    },
                );
                let wait = node
                    .locks
                    .acquire(leaf_page.raw(), sim.now(), spec.leaf_lock_hold);
                RpcReply {
                    value: (),
                    cpu: handler_cpu_time(&spec, work) + spec.cpu_insert_extra / 4 + wait,
                    resp_bytes: msg::ack(),
                }
            })
            .await?;
            // protolint: allow(hot-panic) -- the partition map only
            // yields ids below the cluster size it was built with.
            let node = self.nodes[s_old].clone();
            let spec = self.cluster.spec().clone();
            let cluster = self.cluster.clone();
            let right_raw = right.raw();
            ep.rpc(s_old, msg::install_leaf_req(), move || {
                let (repointed, work) = node.with_tree(|t| t.update_value(old_high, right_raw));
                if repointed {
                    cluster.wal_append(
                        s_old,
                        WalRecord::TreeUpsert {
                            key: old_high,
                            value: right_raw,
                        },
                    );
                }
                RpcReply {
                    value: (),
                    cpu: handler_cpu_time(&spec, work),
                    resp_bytes: msg::ack(),
                }
            })
            .await?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::ClusterSpec;
    use simnet::Sim;
    use std::cell::{Cell, RefCell};

    fn small_cfg() -> FgConfig {
        FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 4,
            cache_capacity: None,
        }
    }

    fn build(sim: &Sim, n: u64) -> (NamCluster, Rc<Hybrid>) {
        let nam = NamCluster::new(sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), n * 8);
        let idx = Hybrid::build(&nam, small_cfg(), partition, (0..n).map(|i| (i * 8, i)));
        (nam, idx)
    }

    #[test]
    fn lookup_via_rpc_plus_one_read() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 5000);
        let ep = Endpoint::new(&nam.rdma);
        let got = Rc::new(RefCell::new(Vec::new()));
        {
            let got = got.clone();
            sim.spawn(async move {
                for i in [0u64, 1234, 4999] {
                    let v = idx.lookup(&ep, i * 8).await.unwrap();
                    got.borrow_mut().push(v);
                }
                let v = idx.lookup(&ep, 9).await.unwrap();
                got.borrow_mut().push(v);
            });
        }
        sim.run();
        assert_eq!(*got.borrow(), vec![Some(0), Some(1234), Some(4999), None]);
        // One RPC + one one-sided READ per lookup (modulo chain steps).
        let rpcs: u64 = (0..4).map(|s| nam.rdma.server_stats(s).rpcs).sum();
        let reads: u64 = (0..4).map(|s| nam.rdma.server_stats(s).onesided_ops).sum();
        assert_eq!(rpcs, 4);
        assert!((4..=8).contains(&reads), "got {reads} READs");
    }

    #[test]
    fn leaves_scatter_under_skewed_partition() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let n = 5000u64;
        let partition = PartitionMap::range_fractions(&[0.80, 0.12, 0.05, 0.03], n * 8);
        let idx = Hybrid::build(&nam, small_cfg(), partition, (0..n).map(|i| (i * 8, i)));
        // Leaf pages are spread round-robin despite the skewed partition.
        for s in 0..4 {
            let bytes = nam.rdma.with_pool(s, |p| p.allocated());
            assert!(bytes > 50 * 200, "server {s} must hold leaves: {bytes}");
        }
        drop(idx);
    }

    #[test]
    fn range_spans_partitions() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 5000);
        let ep = Endpoint::new(&nam.rdma);
        let out = Rc::new(RefCell::new(Vec::new()));
        {
            let out = out.clone();
            sim.spawn(async move {
                let rows = idx.range(&ep, 1200 * 8, 1399 * 8).await.unwrap();
                out.borrow_mut().extend(rows);
            });
        }
        sim.run();
        let rows = out.borrow();
        assert_eq!(rows.len(), 200);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn insert_with_splits_and_upper_registration() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 500);
        let ep = Endpoint::new(&nam.rdma);
        let idx2 = idx.clone();
        sim.spawn(async move {
            for i in 0..500u64 {
                idx2.insert(&ep, i * 8 + 1, 90_000 + i).await.unwrap();
            }
            for i in 0..500u64 {
                assert_eq!(idx2.lookup(&ep, i * 8 + 1).await.unwrap(), Some(90_000 + i));
                assert_eq!(idx2.lookup(&ep, i * 8).await.unwrap(), Some(i));
            }
        });
        sim.run();
    }

    #[test]
    fn concurrent_inserts_all_survive() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 1000);
        for c in 0..6u64 {
            let idx = idx.clone();
            let ep = Endpoint::new(&nam.rdma);
            sim.spawn(async move {
                for i in 0..40u64 {
                    idx.insert(&ep, (i * 6 + c) * 8 + 3, c * 1000 + i)
                        .await
                        .unwrap();
                }
            });
        }
        sim.run();
        let ep = Endpoint::new(&nam.rdma);
        let ok = Rc::new(Cell::new(0u32));
        {
            let idx = idx.clone();
            let ok = ok.clone();
            sim.spawn(async move {
                for c in 0..6u64 {
                    for i in 0..40u64 {
                        if idx.lookup(&ep, (i * 6 + c) * 8 + 3).await.unwrap() == Some(c * 1000 + i)
                        {
                            ok.set(ok.get() + 1);
                        }
                    }
                }
            });
        }
        sim.run();
        assert_eq!(ok.get(), 240);
    }

    #[test]
    fn delete_round_trip() {
        let sim = Sim::new();
        let (nam, idx) = build(&sim, 300);
        let ep = Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            assert!(idx.delete(&ep, 100 * 8).await.unwrap());
            assert_eq!(idx.lookup(&ep, 100 * 8).await.unwrap(), None);
            assert!(!idx.delete(&ep, 100 * 8).await.unwrap());
            let rows = idx.range(&ep, 99 * 8, 101 * 8).await.unwrap();
            assert_eq!(rows.len(), 2, "tombstoned entry must not scan");
        });
        sim.run();
    }
}
