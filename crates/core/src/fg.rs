//! Design 2 (§4): fine-grained distribution, one-sided access.
//!
//! One *global* B-link tree whose nodes (inner and leaf) are scattered
//! round-robin across all memory servers and connected by 8-byte remote
//! pointers. Compute servers traverse the tree with one-sided READs and
//! update it with CAS / WRITE / FETCH_AND_ADD — memory-server CPUs are
//! never involved (Listing 2 + Listing 4).
//!
//! The traversal/SMO protocol itself lives in [`crate::engine`]; this
//! module configures it: the [`NodeSource`] here answers "a node
//! reference is a remote pointer, bytes come from a one-sided READ", and
//! the engine's `TreeWriter`/`RemoteUpper` hooks route split pages
//! through round-robin `RDMA_ALLOC` and split registration through
//! client-side upward propagation over the remotely stored inner levels.
//!
//! Range scans use the §4.3 optimisation: *head nodes* interposed in the
//! leaf chain every `head_stride` leaves redundantly store the remote
//! pointers of their group, letting a scan prefetch a whole group of
//! leaves with selectively signalled READs. Head nodes are only an
//! optimisation: direct sibling pointers are kept, and a scan that meets
//! a leaf absent from the prefetched group (a concurrent split) simply
//! issues one extra READ.
//!
//! With `cache_capacity` set, descents go through the engine's
//! [`Cached`] decorator and inner pages are cached client-side
//! (Appendix A.4) under the validation rule documented in
//! [`crate::resolve`].
//!
//! Cost profile (Table 2): every level costs a round trip, so point
//! lookups move `H·P` bytes; but the aggregated bandwidth of *all*
//! memory servers is available regardless of skew — the design's
//! throughput scales with memory servers for every workload (Fig. 3,
//! Fig. 11).
//!
//! Every operation surfaces verb failures (`VerbError`) to the caller;
//! retry policy lives one level up, in [`crate::Design`].

use std::cell::Cell;
use std::rc::Rc;

use blink::layout::{lock_word, KEY_MAX};
use blink::node::{
    kind_of, HeadNodeMut, HeadNodeRef, InnerNodeMut, LeafNodeMut, LeafNodeRef, NodeKind,
};
use blink::{Key, PageLayout, Ptr, Value};
use rdma_sim::{Cluster, Endpoint, RemotePtr, VerbError};

use crate::cache::CacheLayer;
use crate::engine::{self, RemoteUpper, TreeWriter};
use crate::onesided::read_unlocked;
use crate::resolve::{CachePolicy, Cached, NodeSource, OpAccess, SetupSource};

/// Construction parameters for the fine-grained (and hybrid leaf-level)
/// structure.
#[derive(Clone, Copy, Debug)]
pub struct FgConfig {
    /// Page geometry.
    pub layout: PageLayout,
    /// Bulk-load fill factor in `(0, 1]`.
    pub fill: f64,
    /// Install a head node before every `head_stride` leaves; `0`
    /// disables head nodes.
    pub head_stride: usize,
    /// Client-side cache capacity in entries per client (`Some(0)` =
    /// unbounded); `None` disables caching entirely — the descent is an
    /// exact pass-through to the wire.
    pub cache_capacity: Option<usize>,
}

impl Default for FgConfig {
    fn default() -> Self {
        FgConfig {
            layout: PageLayout::default(),
            fill: 0.7,
            head_stride: 8,
            cache_capacity: None,
        }
    }
}

/// The fine-grained / one-sided index.
pub struct FineGrained {
    cluster: Cluster,
    layout: PageLayout,
    /// Global root remote pointer — conceptually the catalog entry
    /// compute servers resolve (§4.2); updated on root splits.
    root: Cell<RemotePtr>,
    /// Start of the leaf chain (a head node, if enabled, else the
    /// leftmost leaf).
    first: Cell<RemotePtr>,
    /// Round-robin cursor for new-page placement.
    alloc_rr: Cell<usize>,
    head_stride: usize,
    cache: Option<CacheLayer>,
}

/// Result of building a remote leaf level (shared with the hybrid design).
pub(crate) struct LeafLevel {
    /// `(high_key, ptr)` of every real leaf, in key order.
    pub leaves: Vec<(Key, RemotePtr)>,
    /// Chain start (first head node or leftmost leaf).
    pub first: RemotePtr,
}

fn rp(p: Ptr) -> RemotePtr {
    RemotePtr::from_page_ptr(p)
}

/// Round-robin allocation of one page (setup path, untimed).
fn alloc_rr(cluster: &Cluster, layout: PageLayout, rr: &Cell<usize>) -> RemotePtr {
    let s = rr.get();
    rr.set((s + 1) % cluster.num_servers());
    cluster.setup_alloc(s, layout.page_size() as u64)
}

/// Build the remote leaf chain: leaves filled to `fill`, scattered
/// round-robin, linked by remote pointers, with optional head nodes
/// interposed every `head_stride` leaves. Setup path (untimed).
pub(crate) fn build_leaf_level(
    cluster: &Cluster,
    cfg: &FgConfig,
    items: impl Iterator<Item = (Key, Value)>,
    rr: &Cell<usize>,
) -> LeafLevel {
    let per_leaf = ((cfg.layout.entry_capacity() as f64 * cfg.fill) as usize).max(2);

    // Chunk items into leaves, never splitting one key across leaves.
    // One flat buffer plus boundary ranges — bulk load touches millions
    // of entries, so per-chunk `Vec`s are measurable setup cost.
    let all: Vec<(Key, Value)> = items.collect();
    debug_assert!(
        all.windows(2).all(|w| w[0].0 <= w[1].0),
        "leaf-level input unsorted"
    );
    let mut chunks: Vec<(usize, usize)> = Vec::with_capacity(all.len() / per_leaf + 1);
    let mut start = 0;
    while start < all.len() {
        let mut end = (start + per_leaf).min(all.len());
        while end < all.len() && all[end].0 == all[end - 1].0 {
            end += 1;
        }
        chunks.push((start, end));
        start = end;
    }
    if chunks.is_empty() {
        chunks.push((0, 0)); // empty index: one empty leaf
    }

    // Allocate pages: leaves round-robin, plus one head per group.
    let n = chunks.len();
    let leaf_ptrs: Vec<RemotePtr> = (0..n).map(|_| alloc_rr(cluster, cfg.layout, rr)).collect();
    let groups: usize = if cfg.head_stride > 0 {
        n.div_ceil(cfg.head_stride)
    } else {
        0
    };
    let head_ptrs: Vec<RemotePtr> = (0..groups)
        .map(|_| alloc_rr(cluster, cfg.layout, rr))
        .collect();

    // Write leaves with chain links. A leaf's right sibling is the next
    // leaf, except the last leaf of a group, which points at the next
    // group's head.
    let mut leaves = Vec::with_capacity(n);
    // One page buffer reused for every node: `init` zero-fills before
    // writing, so the bytes shipped to the servers are identical to a
    // freshly allocated page without the per-leaf 1 KiB allocation.
    let mut page = cfg.layout.alloc_page();
    for (i, &(lo, hi)) in chunks.iter().enumerate() {
        let chunk = &all[lo..hi];
        let high = if i + 1 == n {
            KEY_MAX
        } else {
            chunk.last().expect("non-last leaves are non-empty").0
        };
        let right = if i + 1 == n {
            RemotePtr::NULL
        } else if cfg.head_stride > 0 && (i + 1) % cfg.head_stride == 0 {
            head_ptrs[(i + 1) / cfg.head_stride]
        } else {
            leaf_ptrs[i + 1]
        };
        let left = if i == 0 {
            RemotePtr::NULL
        } else {
            leaf_ptrs[i - 1]
        };
        let mut leaf = LeafNodeMut::init(&mut page, high, left.as_page_ptr(), right.as_page_ptr());
        for &(k, v) in chunk {
            leaf.push(k, v)
                .expect("fill factor keeps leaves under capacity");
        }
        cluster.setup_write(leaf_ptrs[i], &page);
        leaves.push((high, leaf_ptrs[i]));
    }

    // Write head nodes: each lists its group's leaves and chains to the
    // group's first leaf.
    for (g, &head_ptr) in head_ptrs.iter().enumerate() {
        let lo = g * cfg.head_stride;
        let hi = (lo + cfg.head_stride).min(n);
        let ptrs: Vec<Ptr> = leaf_ptrs[lo..hi].iter().map(|p| p.as_page_ptr()).collect();
        HeadNodeMut::init(&mut page, &ptrs, leaf_ptrs[lo].as_page_ptr());
        cluster.setup_write(head_ptr, &page);
    }

    let first = if groups > 0 {
        head_ptrs[0]
    } else {
        leaf_ptrs[0]
    };
    LeafLevel { leaves, first }
}

/// Build inner levels bottom-up over `(high_key, child)` pairs; returns
/// the root pointer. Setup path (untimed).
fn build_inner_levels(
    cluster: &Cluster,
    cfg: &FgConfig,
    rr: &Cell<usize>,
    mut level: Vec<(Key, RemotePtr)>,
) -> RemotePtr {
    let per_inner = ((cfg.layout.entry_capacity() as f64 * cfg.fill) as usize).max(2);
    let mut level_no: u8 = 0;
    let mut page = cfg.layout.alloc_page(); // reused; `init` zero-fills
    while level.len() > 1 {
        level_no += 1;
        let mut next = Vec::new();
        // Pre-compute node extents (rebalancing a trailing 1-entry node).
        let mut starts = Vec::new();
        let mut i = 0;
        while i < level.len() {
            let mut take = per_inner.min(level.len() - i);
            if level.len() - i - take == 1 {
                take -= 1;
            }
            starts.push((i, take));
            i += take;
        }
        let ptrs: Vec<RemotePtr> = starts
            .iter()
            .map(|_| alloc_rr(cluster, cfg.layout, rr))
            .collect();
        for (j, &(start, take)) in starts.iter().enumerate() {
            let right = if j + 1 == ptrs.len() {
                RemotePtr::NULL
            } else {
                ptrs[j + 1]
            };
            let high = level[start + take - 1].0;
            let mut node = InnerNodeMut::init(&mut page, level_no, high, right.as_page_ptr());
            for &(sep, child) in &level[start..start + take] {
                node.push(sep, child.as_page_ptr()).expect("under capacity");
            }
            cluster.setup_write(ptrs[j], &page);
            next.push((high, ptrs[j]));
        }
        level = next;
    }
    level[0].1
}

impl FineGrained {
    /// Build the global tree from `items` (sorted by key), scattering
    /// nodes round-robin over all memory servers.
    pub fn build(
        cluster: &Cluster,
        cfg: FgConfig,
        items: impl Iterator<Item = (Key, Value)>,
    ) -> Rc<Self> {
        // The index layer owns the lock-word encoding; teach the
        // transport's fault injector what an acquire CAS looks like.
        cluster.set_lock_acquire_shape(lock_word::is_acquire);
        let rr = Cell::new(0);
        let leaf_level = build_leaf_level(cluster, &cfg, items, &rr);
        let root = build_inner_levels(cluster, &cfg, &rr, leaf_level.leaves);
        // All index state lives in the memory pools (PoolWrite/PoolAllocTo
        // records recover it); seal the bulk-loaded image as the fiat
        // recovery baseline so setup writes are never replayed.
        cluster.seal_setup();
        Rc::new(FineGrained {
            cluster: cluster.clone(),
            layout: cfg.layout,
            root: Cell::new(root),
            first: Cell::new(leaf_level.first),
            alloc_rr: rr,
            head_stride: cfg.head_stride,
            cache: cfg.cache_capacity.map(|cap| CacheLayer::new(cluster, cap)),
        })
    }

    /// Current root remote pointer (the catalog entry).
    pub fn root(&self) -> RemotePtr {
        self.root.get()
    }

    /// Start of the leaf chain.
    pub fn first(&self) -> RemotePtr {
        self.first.get()
    }

    /// Page geometry.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// The cluster this index lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The client-side cache layer, if `cache_capacity` enabled one.
    pub fn cache(&self) -> Option<&CacheLayer> {
        self.cache.as_ref()
    }

    /// The engine's view of this index: a (possibly caching) node
    /// source over one-sided READs.
    pub(crate) fn source(&self) -> Cached<'_, FineGrained> {
        Cached::new(self, self.cache.as_ref())
    }

    /// Untimed page-resolution view for control-path walks (sanitizer,
    /// head maintenance).
    pub fn setup_source(&self) -> SetupSource {
        SetupSource::new(&self.cluster, self.layout)
    }

    fn ps(&self) -> usize {
        self.layout.page_size()
    }

    /// `remote_lookup` (Listing 2): descend with one-sided READs,
    /// chasing siblings past in-flight splits.
    pub async fn lookup(&self, ep: &Endpoint, key: Key) -> Result<Option<Value>, VerbError> {
        engine::lookup(&self.source(), ep, key).await
    }

    /// Range query over `[lo, hi]` with head-node prefetch.
    pub async fn range(
        &self,
        ep: &Endpoint,
        lo: Key,
        hi: Key,
    ) -> Result<Vec<(Key, Value)>, VerbError> {
        engine::range(&self.source(), ep, lo, hi).await
    }

    /// `remote_insert` (Listing 2): one attempt of the engine's
    /// lock-coupled install (see `engine::insert` for the
    /// exactly-once retry-absorption contract under [`crate::Design`]).
    pub async fn insert(&self, ep: &Endpoint, key: Key, value: Value) -> Result<(), VerbError> {
        engine::insert(&self.source(), ep, key, value, false).await
    }

    /// Tombstone-delete `key`; returns whether an entry was deleted.
    pub async fn delete(&self, ep: &Endpoint, key: Key) -> Result<bool, VerbError> {
        engine::delete(&self.source(), ep, key).await
    }

    /// Epoch head-node maintenance (§4.3): rebuild the head nodes' group
    /// pointer lists from the current leaf chain, folding in leaves added
    /// by splits. Runs on the control path (the paper runs it in a
    /// background thread in regular intervals).
    pub fn maintain_heads(&self) {
        if self.head_stride == 0 {
            return;
        }
        // Collect the real leaves in chain order; the head pages passed
        // on the way are about to be abandoned (epoch-retired).
        let src = self.setup_source();
        let mut leaves = Vec::new();
        let mut old_heads = Vec::new();
        let mut cur = self.first.get();
        while !cur.is_null() {
            let page = src.load(cur);
            match kind_of(&page) {
                NodeKind::Head => {
                    old_heads.push(cur);
                    cur = rp(HeadNodeRef::new(&page).right_sibling());
                }
                NodeKind::Leaf => {
                    leaves.push(cur);
                    cur = rp(LeafNodeRef::new(&page).right_sibling());
                }
                NodeKind::Inner => unreachable!("inner node in the leaf chain"),
            }
        }
        // Rebuild groups of head_stride leaves with fresh head nodes.
        let rrc = &self.alloc_rr;
        let groups: Vec<&[RemotePtr]> = leaves.chunks(self.head_stride).collect();
        let head_ptrs: Vec<RemotePtr> = groups
            .iter()
            .map(|_| alloc_rr(&self.cluster, self.layout, rrc))
            .collect();
        for (g, group) in groups.iter().enumerate() {
            let ptrs: Vec<Ptr> = group.iter().map(|p| p.as_page_ptr()).collect();
            let mut page = self.layout.alloc_page();
            HeadNodeMut::init(&mut page, &ptrs, group[0].as_page_ptr());
            self.cluster.setup_write(head_ptrs[g], &page);
            // Link the previous group's last leaf to this head.
            let prev_last = if g == 0 {
                None
            } else {
                groups[g - 1].last().copied()
            };
            if let Some(last) = prev_last {
                let mut lp = src.load(last);
                // Last leaf of a group points at the next group's head,
                // whose sibling routes on to the group's first leaf.
                LeafNodeMut::new(&mut lp).set_right_sibling(head_ptrs[g].as_page_ptr());
                self.cluster.setup_write(last, &lp);
            }
        }
        if let Some(&h) = head_ptrs.first() {
            self.first.set(h);
        }
        // The replaced heads are unreachable from the new chain: retire
        // them so the sanitizer can flag any straggler access.
        for h in old_heads {
            crate::gc::note_freed(&self.cluster, h, self.ps());
        }
    }
}

impl NodeSource for FineGrained {
    /// The client descends the remotely stored inner levels itself.
    const CLIENT_DESCENT: bool = true;

    fn layout(&self) -> PageLayout {
        self.layout
    }

    fn cache_policy(&self) -> CachePolicy {
        CachePolicy::InnerPages
    }

    async fn start(
        &self,
        _ep: &Endpoint,
        _key: Key,
        _access: OpAccess,
    ) -> Result<RemotePtr, VerbError> {
        Ok(self.root.get())
    }

    async fn load(&self, ep: &Endpoint, ptr: RemotePtr) -> Result<rdma_sim::PageBuf, VerbError> {
        read_unlocked(ep, ptr, self.ps()).await
    }
}

impl TreeWriter for FineGrained {
    async fn alloc(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError> {
        engine::rr_alloc(ep, &self.alloc_rr, self.ps()).await
    }

    async fn complete_split(
        &self,
        ep: &Endpoint,
        path: Vec<RemotePtr>,
        sep: Key,
        left: RemotePtr,
        right: RemotePtr,
        _old_high: Key,
    ) -> Result<(), VerbError> {
        engine::propagate_split(self, ep, path, sep, left, right, 1).await
    }
}

impl RemoteUpper for FineGrained {
    fn layout(&self) -> PageLayout {
        self.layout
    }

    fn root_ptr(&self) -> RemotePtr {
        self.root.get()
    }

    fn install_root(&self, old: RemotePtr, new: RemotePtr) -> bool {
        // Catalog check-and-set: no await between check and set, so the
        // update is atomic with respect to other clients.
        if self.root.get() == old {
            self.root.set(new);
            true
        } else {
            false // new root page is leaked; harmless
        }
    }

    async fn alloc_node(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError> {
        engine::rr_alloc(ep, &self.alloc_rr, self.ps()).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::ClusterSpec;
    use simnet::Sim;
    use std::cell::RefCell;

    fn small_cfg() -> FgConfig {
        FgConfig {
            layout: PageLayout::new(200), // 10 entries per node
            fill: 0.7,
            head_stride: 4,
            cache_capacity: None,
        }
    }

    fn build(sim: &Sim, n: u64, cfg: FgConfig) -> (Cluster, Rc<FineGrained>) {
        let cluster = Cluster::new(sim, ClusterSpec::default());
        let idx = FineGrained::build(&cluster, cfg, (0..n).map(|i| (i * 8, i)));
        (cluster, idx)
    }

    #[test]
    fn nodes_scatter_across_all_servers() {
        let sim = Sim::new();
        let (cluster, _idx) = build(&sim, 5000, small_cfg());
        // Round-robin placement: every server received pages.
        for s in 0..cluster.num_servers() {
            let allocated = cluster.with_pool(s, |p| p.allocated());
            assert!(allocated > 100 * 200, "server {s} got {allocated} bytes");
        }
    }

    #[test]
    fn lookup_found_and_missing() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 5000, small_cfg());
        let ep = Endpoint::new(&cluster);
        let results = Rc::new(RefCell::new(Vec::new()));
        {
            let results = results.clone();
            sim.spawn(async move {
                for i in [0u64, 1, 2499, 4999] {
                    let got = idx.lookup(&ep, i * 8).await.unwrap();
                    results.borrow_mut().push(got);
                }
                let got = idx.lookup(&ep, 5).await.unwrap();
                results.borrow_mut().push(got);
            });
        }
        sim.run();
        assert_eq!(
            *results.borrow(),
            vec![Some(0), Some(1), Some(2499), Some(4999), None]
        );
    }

    #[test]
    fn lookup_costs_height_round_trips() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 5000, small_cfg());
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            idx.lookup(&ep, 2400 * 8).await.unwrap();
        });
        sim.run();
        let total_reads: u64 = (0..4).map(|s| cluster.server_stats(s).onesided_ops).sum();
        // 5000 keys / 7 per leaf ≈ 715 leaves; fanout 7 → height 4-5.
        assert!(
            (4..=6).contains(&total_reads),
            "expected height-many READs, got {total_reads}"
        );
    }

    #[test]
    fn range_with_head_prefetch() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 5000, small_cfg());
        let ep = Endpoint::new(&cluster);
        let out = Rc::new(RefCell::new(Vec::new()));
        {
            let out = out.clone();
            sim.spawn(async move {
                let rows = idx.range(&ep, 1000 * 8, 1499 * 8).await.unwrap();
                out.borrow_mut().extend(rows);
            });
        }
        sim.run();
        let rows = out.borrow();
        assert_eq!(rows.len(), 500);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(rows[0], (8000, 1000));
    }

    #[test]
    fn range_without_heads_matches() {
        let sim = Sim::new();
        let cfg = FgConfig {
            head_stride: 0,
            ..small_cfg()
        };
        let (cluster, idx) = build(&sim, 2000, cfg);
        let ep = Endpoint::new(&cluster);
        let out = Rc::new(RefCell::new(Vec::new()));
        {
            let out = out.clone();
            sim.spawn(async move {
                let rows = idx.range(&ep, 0, 1999 * 8).await.unwrap();
                out.borrow_mut().extend(rows);
            });
        }
        sim.run();
        assert_eq!(out.borrow().len(), 2000);
    }

    #[test]
    fn insert_and_split_propagation() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 500, small_cfg());
        let ep = Endpoint::new(&cluster);
        let idx2 = idx.clone();
        sim.spawn(async move {
            // Dense odd-key inserts force many leaf and inner splits.
            for i in 0..500u64 {
                idx2.insert(&ep, i * 8 + 1, 10_000 + i).await.unwrap();
            }
            for i in 0..500u64 {
                assert_eq!(idx2.lookup(&ep, i * 8 + 1).await.unwrap(), Some(10_000 + i));
                assert_eq!(
                    idx2.lookup(&ep, i * 8).await.unwrap(),
                    Some(i),
                    "old key {i}"
                );
            }
        });
        sim.run();
        drop(cluster);
    }

    #[test]
    fn concurrent_inserts_all_survive() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 1000, small_cfg());
        for c in 0..8u64 {
            let idx = idx.clone();
            let ep = Endpoint::new(&cluster);
            sim.spawn(async move {
                for i in 0..60u64 {
                    idx.insert(&ep, (i * 1000 + c) * 16 + 1, c * 100 + i)
                        .await
                        .unwrap();
                }
            });
        }
        sim.run();
        let idx2 = idx.clone();
        let ep = Endpoint::new(&cluster);
        let ok = Rc::new(Cell::new(0u32));
        {
            let ok = ok.clone();
            sim.spawn(async move {
                for c in 0..8u64 {
                    for i in 0..60u64 {
                        if idx2.lookup(&ep, (i * 1000 + c) * 16 + 1).await.unwrap()
                            == Some(c * 100 + i)
                        {
                            ok.set(ok.get() + 1);
                        }
                    }
                }
            });
        }
        sim.run();
        assert_eq!(ok.get(), 480, "every concurrent insert must be found");
    }

    #[test]
    fn delete_tombstones() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 200, small_cfg());
        let ep = Endpoint::new(&cluster);
        sim.spawn(async move {
            assert!(idx.delete(&ep, 40 * 8).await.unwrap());
            assert_eq!(idx.lookup(&ep, 40 * 8).await.unwrap(), None);
            assert!(!idx.delete(&ep, 40 * 8).await.unwrap());
            // Neighbours unaffected.
            assert_eq!(idx.lookup(&ep, 39 * 8).await.unwrap(), Some(39));
            assert_eq!(idx.lookup(&ep, 41 * 8).await.unwrap(), Some(41));
        });
        sim.run();
    }

    #[test]
    fn root_growth_under_append_pressure() {
        let sim = Sim::new();
        // Tiny index: root is a leaf; appends must grow it multiple
        // levels.
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let idx = FineGrained::build(&cluster, small_cfg(), (0..5u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&cluster);
        let idx2 = idx.clone();
        sim.spawn(async move {
            for i in 5..400u64 {
                idx2.insert(&ep, i * 8, i).await.unwrap();
            }
            for i in 0..400u64 {
                assert_eq!(idx2.lookup(&ep, i * 8).await.unwrap(), Some(i), "key {i}");
            }
        });
        sim.run();
    }

    #[test]
    fn maintain_heads_after_splits() {
        let sim = Sim::new();
        let (cluster, idx) = build(&sim, 300, small_cfg());
        let ep = Endpoint::new(&cluster);
        {
            let idx = idx.clone();
            sim.spawn(async move {
                for i in 0..300u64 {
                    idx.insert(&ep, i * 8 + 3, i).await.unwrap();
                }
            });
        }
        sim.run();
        idx.maintain_heads();
        // Scans still see everything after head rebuild.
        let ep = Endpoint::new(&cluster);
        let n = Rc::new(Cell::new(0usize));
        {
            let idx = idx.clone();
            let n = n.clone();
            sim.spawn(async move {
                n.set(idx.range(&ep, 0, KEY_MAX - 1).await.unwrap().len());
            });
        }
        sim.run();
        assert_eq!(n.get(), 600);
    }

    use std::cell::Cell;
}
