#![warn(missing_docs)]

//! # namdex-core — distributed tree-based index structures for RDMA
//!
//! The paper's primary contribution: three distributed B-link tree
//! designs for the NAM architecture, differing in *how the index is
//! distributed* across memory servers and *which RDMA primitives* access
//! it.
//!
//! | Design | Module | Distribution | Access |
//! |--------|--------|--------------|--------|
//! | 1 (§3) | [`cg`]  | coarse-grained: classic partitioning, one local tree per memory server | two-sided SEND/RECV RPC |
//! | 2 (§4) | [`fg`]  | fine-grained: one global tree, nodes scattered round-robin, remote pointers | one-sided READ/WRITE/CAS/FAA |
//! | 3 (§5) | [`hybrid`] | coarse-grained upper levels + fine-grained leaf level | RPC traversal + one-sided leaf access |
//!
//! All three use the same concurrency protocol — optimistic lock coupling
//! over an 8-byte `(version, lock-bit)` word per node — and the same
//! tombstone-delete / epoch-GC scheme ([`gc`]). The fine-grained design
//! additionally supports head-node prefetch for range scans (§4.3) and an
//! optional client-side cache of upper levels ([`cache`], Appendix A.4).
//!
//! [`Design`] wraps the three behind one dispatchable interface for
//! benchmarks and examples.

pub mod cache;
pub mod cg;
pub mod fg;
pub mod gc;
pub mod hybrid;
pub(crate) mod onesided;

pub use cache::ClientCache;
pub use cg::CoarseGrained;
pub use fg::{FgConfig, FineGrained};
pub use hybrid::Hybrid;

use blink::{Key, Value};
use nam::{IndexDescriptor, IndexKind};
use rdma_sim::{Endpoint, RemotePtr};
use std::rc::Rc;

/// Any of the three index designs, dispatchable at runtime.
#[derive(Clone)]
pub enum Design {
    /// Design 1: coarse-grained / two-sided.
    Cg(Rc<CoarseGrained>),
    /// Design 2: fine-grained / one-sided.
    Fg(Rc<FineGrained>),
    /// Design 3: hybrid.
    Hybrid(Rc<Hybrid>),
}

impl Design {
    /// Point lookup: first live value under `key`.
    pub async fn lookup(&self, ep: &Endpoint, key: Key) -> Option<Value> {
        match self {
            Design::Cg(d) => d.lookup(ep, key).await,
            Design::Fg(d) => d.lookup(ep, key).await,
            Design::Hybrid(d) => d.lookup(ep, key).await,
        }
    }

    /// Range query over `[lo, hi]` (inclusive); returns live entries in
    /// key order.
    pub async fn range(&self, ep: &Endpoint, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        match self {
            Design::Cg(d) => d.range(ep, lo, hi).await,
            Design::Fg(d) => d.range(ep, lo, hi).await,
            Design::Hybrid(d) => d.range(ep, lo, hi).await,
        }
    }

    /// Insert `(key, value)`; duplicates are allowed (non-unique index).
    pub async fn insert(&self, ep: &Endpoint, key: Key, value: Value) {
        match self {
            Design::Cg(d) => d.insert(ep, key, value).await,
            Design::Fg(d) => d.insert(ep, key, value).await,
            Design::Hybrid(d) => d.insert(ep, key, value).await,
        }
    }

    /// Tombstone-delete the first live entry under `key`; returns whether
    /// an entry was deleted. Space is reclaimed by epoch GC ([`gc`]).
    pub async fn delete(&self, ep: &Endpoint, key: Key) -> bool {
        match self {
            Design::Cg(d) => d.delete(ep, key).await,
            Design::Fg(d) => d.delete(ep, key).await,
            Design::Hybrid(d) => d.delete(ep, key).await,
        }
    }

    /// Short design name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Design::Cg(_) => "coarse-grained",
            Design::Fg(_) => "fine-grained",
            Design::Hybrid(_) => "hybrid",
        }
    }

    /// The catalog entry describing this index (§4.2: compute servers
    /// resolve roots and partition maps through the catalog service).
    pub fn descriptor(&self) -> IndexDescriptor {
        match self {
            Design::Cg(d) => IndexDescriptor {
                kind: IndexKind::CoarseGrained,
                root: RemotePtr::NULL,
                partition: Some(d.partition().clone()),
            },
            Design::Fg(d) => IndexDescriptor {
                kind: IndexKind::FineGrained,
                root: d.root(),
                partition: None,
            },
            Design::Hybrid(d) => IndexDescriptor {
                kind: IndexKind::Hybrid,
                root: RemotePtr::NULL,
                partition: Some(d.partition().clone()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink::PageLayout;
    use nam::{NamCluster, PartitionMap};
    use rdma_sim::ClusterSpec;
    use simnet::Sim;

    #[test]
    fn descriptors_register_in_catalog() {
        let sim = Sim::new();
        let mut nam = NamCluster::new(&sim, ClusterSpec::default());
        let items = || (0..1000u64).map(|i| (i * 8, i));
        let partition = PartitionMap::range_uniform(nam.num_servers(), 8000);
        let designs = [
            Design::Cg(CoarseGrained::build(
                &nam,
                PageLayout::default(),
                partition.clone(),
                items(),
                0.7,
            )),
            Design::Fg(FineGrained::build(&nam.rdma, FgConfig::default(), items())),
            Design::Hybrid(Hybrid::build(&nam, FgConfig::default(), partition, items())),
        ];
        for d in &designs {
            nam.catalog.register(d.name(), d.descriptor());
        }
        let fg = nam.catalog.lookup("fine-grained").expect("registered");
        assert_eq!(fg.kind, IndexKind::FineGrained);
        assert!(!fg.root.is_null(), "FG publishes its root pointer");
        let cg = nam.catalog.lookup("coarse-grained").expect("registered");
        assert_eq!(cg.partition.as_ref().unwrap().num_servers(), 4);
        assert_eq!(nam.catalog.names().count(), 3);
    }
}
