#![warn(missing_docs)]

//! # namdex-core — distributed tree-based index structures for RDMA
//!
//! The paper's primary contribution: three distributed B-link tree
//! designs for the NAM architecture, differing in *how the index is
//! distributed* across memory servers and *which RDMA primitives* access
//! it.
//!
//! | Design | Module | Distribution | Access |
//! |--------|--------|--------------|--------|
//! | 1 (§3) | [`cg`]  | coarse-grained: classic partitioning, one local tree per memory server | two-sided SEND/RECV RPC |
//! | 2 (§4) | [`fg`]  | fine-grained: one global tree, nodes scattered round-robin, remote pointers | one-sided READ/WRITE/CAS/FAA |
//! | 3 (§5) | [`hybrid`] | coarse-grained upper levels + fine-grained leaf level | RPC traversal + one-sided leaf access |
//!
//! All three use the same concurrency protocol — optimistic lock coupling
//! over an 8-byte `(version, lock-bit)` word per node — implemented once
//! in the shared traversal/SMO [`engine`], parameterized by each design's
//! [`resolve::NodeSource`] ("how does a node reference become page
//! bytes"); all three share the same tombstone-delete / epoch-GC scheme
//! ([`gc`]). Both pointer-resolving designs support an optional
//! client-side cache ([`cache`], Appendix A.4) as a decorator over their
//! node source, and the fine-grained leaf chain supports head-node
//! prefetch for range scans (§4.3).
//!
//! [`Design`] wraps the three behind one dispatchable interface for
//! benchmarks and examples, and adds the *recovery* layer: transient verb
//! failures (timeouts, unreachable servers) are retried from the root
//! with bounded exponential backoff and deterministic jitter; permanent
//! conditions surface as [`OpError`].

pub mod cache;
pub mod cg;
pub mod engine;
pub mod fg;
pub mod gc;
pub mod hybrid;
pub mod learned;
pub(crate) mod onesided;
pub mod resolve;

pub use cache::{CacheLayer, CacheStats, ClientCache};
pub use cg::CoarseGrained;
pub use engine::RangeProgress;
pub use fg::{FgConfig, FineGrained};
pub use hybrid::Hybrid;
pub use learned::{Learned, LearnedStats};
pub use resolve::{CachePolicy, NodeSource, OpAccess, SetupSource};

use blink::{Key, Value};
use nam::{IndexDescriptor, IndexKind};
use rdma_sim::{Endpoint, OpArgs, OpKind, OpOutcome, RemotePtr, VerbError};
use std::fmt;
use std::rc::Rc;

/// Why an index operation failed after the retry layer gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpError {
    /// The issuing client was killed; the operation cannot make progress
    /// and must not be retried (its worker is gone).
    Cancelled,
    /// Every retry of a transient fault failed;
    /// [`rdma_sim::ClusterSpec::retry_limit`] attempts were made.
    RetriesExhausted {
        /// Attempts performed (initial try + retries).
        attempts: u32,
        /// The verb error of the final attempt.
        last: VerbError,
    },
    /// A non-retryable verb failure (e.g. a corrupt remote pointer).
    Fatal(VerbError),
}

impl OpError {
    /// Whether the operation was aborted because the client died.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, OpError::Cancelled)
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Cancelled => write!(f, "operation cancelled: client killed"),
            OpError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            OpError::Fatal(e) => write!(f, "fatal verb failure: {e}"),
        }
    }
}

impl std::error::Error for OpError {}

/// Any of the three index designs, dispatchable at runtime.
///
/// All operations go through the retry layer: a [`VerbError::Timeout`]
/// or [`VerbError::ServerUnreachable`] aborts the attempt, backs off,
/// and restarts the whole operation from the root (every design's
/// per-attempt protocol is restartable: optimistic descents re-validate,
/// and leaf installs are idempotent under the B-link invariants).
#[derive(Clone)]
pub enum Design {
    /// Design 1: coarse-grained / two-sided.
    Cg(Rc<CoarseGrained>),
    /// Design 2: fine-grained / one-sided.
    Fg(Rc<FineGrained>),
    /// Design 3: hybrid.
    Hybrid(Rc<Hybrid>),
    /// Design 4: learned-index routing over the hybrid layout.
    Learned(Rc<Learned>),
}

/// Whether this build re-introduces the known-fixed historical bugs used
/// to mutation-test the model checker (the `mutations` cargo feature).
/// Such builds are intentionally incorrect; nothing but the checker's
/// own validation should run against them.
pub fn mutations_enabled() -> bool {
    cfg!(feature = "mutations")
}

/// The seeded *race* mutations of `mutations` builds: each one elides a
/// single read-validation fence so the happens-before race detector
/// (`crates/racecheck`) and the `validated-before-use` protolint rule
/// can be mutation-tested. Unlike the always-on historical mutations A/B
/// these are selected one at a time through the `NAMDEX_RACE_MUT`
/// environment variable, so one `mutations` binary can hunt each race in
/// isolation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceMut {
    /// Drop the `covers()` version re-check in the engine descent: the
    /// optimistically read leaf escapes into the op result unvalidated.
    DescendNoCovers,
    /// Skip the restart-epoch fence (`CacheLayer::flush_if_restarted`)
    /// in `resolve::Cached`: cached pages/routes survive a server
    /// restart and are served against the rebuilt pool.
    CachedNoFence,
    /// Skip the learned design's locked-page re-read: a predicted leaf
    /// is read raw instead of through `read_unlocked`, so a mid-write
    /// snapshot can escape without the spin re-read.
    LearnedNoReread,
    /// Reorder the commit: unlock FAA before the final in-place WRITE,
    /// publishing the version bump while the page bytes still race.
    UnlockBeforeWrite,
}

impl RaceMut {
    /// The `NAMDEX_RACE_MUT` value selecting this mutation.
    pub fn key(self) -> &'static str {
        match self {
            RaceMut::DescendNoCovers => "descend-no-covers",
            RaceMut::CachedNoFence => "cached-no-fence",
            RaceMut::LearnedNoReread => "learned-no-reread",
            RaceMut::UnlockBeforeWrite => "unlock-before-write",
        }
    }

    /// All four seeded race mutations.
    pub const ALL: [RaceMut; 4] = [
        RaceMut::DescendNoCovers,
        RaceMut::CachedNoFence,
        RaceMut::LearnedNoReread,
        RaceMut::UnlockBeforeWrite,
    ];
}

/// Whether `which` is active: `mutations` builds only, and only when
/// `NAMDEX_RACE_MUT` selects it. Non-mutation builds compile this to
/// `false` (the env read is behind the `cfg!`).
pub fn race_mut(which: RaceMut) -> bool {
    cfg!(feature = "mutations")
        && std::env::var("NAMDEX_RACE_MUT").map(|v| v == which.key()) == Ok(true)
}

/// Report a protocol fence evaluation on the page at `ptr` to the
/// observer bus (race detector). A flag check with no observers.
pub(crate) fn note_fence(ep: &Endpoint, kind: rdma_sim::FenceKind, ptr: RemotePtr) {
    if ep.cluster().has_observers() {
        ep.cluster()
            .note_fence(ep.client_id(), kind, ptr.server(), ptr.offset());
    }
}

/// Report a restart-epoch reconciliation (cache/model flush check) by
/// this client. A flag check with no observers.
pub(crate) fn note_epoch_check(ep: &Endpoint) {
    if ep.cluster().has_observers() {
        ep.cluster()
            .note_fence(ep.client_id(), rdma_sim::FenceKind::EpochCheck, 0, 0);
    }
}

/// Report an index-level invocation to the observer bus (history
/// recorders, model checker). A flag check with no observers installed.
fn note_invoke(ep: &Endpoint, args: OpArgs) {
    if ep.cluster().has_observers() {
        ep.cluster().note_op_invoke(ep.client_id(), args);
    }
}

/// Report the outcome of the invocation reported last by this client.
/// `outcome` is built lazily so the hot no-observer path never clones
/// range rows.
fn note_response(ep: &Endpoint, outcome: impl FnOnce() -> OpOutcome) {
    if ep.cluster().has_observers() {
        ep.cluster().note_op_response(ep.client_id(), &outcome());
    }
}

impl Design {
    /// Point lookup: first live value under `key`.
    pub async fn lookup(&self, ep: &Endpoint, key: Key) -> Result<Option<Value>, OpError> {
        note_invoke(ep, OpArgs::Lookup { key });
        let r = engine::with_op_span(ep, OpKind::Lookup, engine::lookup_op(self, ep, key)).await;
        note_response(ep, || match &r {
            Ok(v) => OpOutcome::Lookup(*v),
            Err(_) => OpOutcome::Failed,
        });
        r
    }

    /// Range query over `[lo, hi]` (inclusive); returns live entries in
    /// key order.
    pub async fn range(
        &self,
        ep: &Endpoint,
        lo: Key,
        hi: Key,
    ) -> Result<Vec<(Key, Value)>, OpError> {
        note_invoke(ep, OpArgs::Range { lo, hi });
        let r = engine::with_op_span(ep, OpKind::Range, engine::range_op(self, ep, lo, hi)).await;
        note_response(ep, || match &r {
            Ok(rows) => OpOutcome::Range(rows.clone()),
            Err(_) => OpOutcome::Failed,
        });
        r
    }

    /// Insert `(key, value)`; duplicates are allowed (non-unique index).
    ///
    /// Exactly-once under retries for every design: a *re*-attempt
    /// (`retrying = true` under the engine's retry layer) first checks
    /// the covering leaf for a live `(key, value)` pair and absorbs the
    /// retry if its predecessor already committed. For the one-sided
    /// designs the check runs client-side in the lock-coupled install;
    /// for CG the flag travels with the RPC and the server handler
    /// absorbs the duplicate. Both paths share the engine's absorption
    /// logic — it lives in `crate::engine` and nowhere else.
    pub async fn insert(&self, ep: &Endpoint, key: Key, value: Value) -> Result<(), OpError> {
        note_invoke(ep, OpArgs::Insert { key, value });
        let r =
            engine::with_op_span(ep, OpKind::Insert, engine::insert_op(self, ep, key, value)).await;
        note_response(ep, || match &r {
            Ok(()) => OpOutcome::Insert,
            Err(_) => OpOutcome::Failed,
        });
        r
    }

    /// Tombstone-delete the first live entry under `key`; returns whether
    /// an entry was deleted. Space is reclaimed by epoch GC ([`gc`]).
    pub async fn delete(&self, ep: &Endpoint, key: Key) -> Result<bool, OpError> {
        note_invoke(ep, OpArgs::Delete { key });
        let r = engine::with_op_span(ep, OpKind::Delete, engine::delete_op(self, ep, key)).await;
        note_response(ep, || match &r {
            Ok(found) => OpOutcome::Delete(*found),
            Err(_) => OpOutcome::Failed,
        });
        r
    }

    /// Aggregate client-cache statistics, if this design was built with
    /// `cache_capacity` enabled (`None` for CG and uncached builds).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match self {
            Design::Cg(_) => None,
            Design::Fg(d) => d.cache().map(|c| c.stats()),
            Design::Hybrid(d) => d.cache().map(|c| c.stats()),
            // The learned design's client-resident state is the model,
            // not a page/route cache — see `learned_stats`.
            Design::Learned(_) => None,
        }
    }

    /// Counters of the learned routing layer (`None` for the other
    /// designs).
    pub fn learned_stats(&self) -> Option<LearnedStats> {
        match self {
            Design::Learned(d) => Some(d.stats()),
            _ => None,
        }
    }

    /// Short design name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Design::Cg(_) => "coarse-grained",
            Design::Fg(_) => "fine-grained",
            Design::Hybrid(_) => "hybrid",
            Design::Learned(_) => "learned",
        }
    }

    /// The catalog entry describing this index (§4.2: compute servers
    /// resolve roots and partition maps through the catalog service).
    pub fn descriptor(&self) -> IndexDescriptor {
        match self {
            Design::Cg(d) => IndexDescriptor {
                kind: IndexKind::CoarseGrained,
                root: RemotePtr::NULL,
                partition: Some(d.partition().clone()),
                model: None,
            },
            Design::Fg(d) => IndexDescriptor {
                kind: IndexKind::FineGrained,
                root: d.root(),
                partition: None,
                model: None,
            },
            Design::Hybrid(d) => IndexDescriptor {
                kind: IndexKind::Hybrid,
                root: RemotePtr::NULL,
                partition: Some(d.partition().clone()),
                model: None,
            },
            Design::Learned(d) => IndexDescriptor {
                kind: IndexKind::Learned,
                root: RemotePtr::NULL,
                partition: Some(d.tree().partition().clone()),
                model: d.model(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink::PageLayout;
    use nam::{NamCluster, PartitionMap};
    use rdma_sim::ClusterSpec;
    use simnet::{Sim, SimDur};
    use std::cell::Cell;

    #[test]
    fn descriptors_register_in_catalog() {
        let sim = Sim::new();
        let mut nam = NamCluster::new(&sim, ClusterSpec::default());
        let items = || (0..1000u64).map(|i| (i * 8, i));
        let partition = PartitionMap::range_uniform(nam.num_servers(), 8000);
        let designs = [
            Design::Cg(CoarseGrained::build(
                &nam,
                PageLayout::default(),
                partition.clone(),
                items(),
                0.7,
            )),
            Design::Fg(FineGrained::build(&nam.rdma, FgConfig::default(), items())),
            Design::Hybrid(Hybrid::build(
                &nam,
                FgConfig::default(),
                partition.clone(),
                items(),
            )),
            Design::Learned(Learned::build(
                &nam,
                FgConfig::default(),
                partition,
                items(),
            )),
        ];
        for d in &designs {
            nam.catalog.register(d.name(), d.descriptor());
        }
        let fg = nam.catalog.lookup("fine-grained").expect("registered");
        assert_eq!(fg.kind, IndexKind::FineGrained);
        assert!(!fg.root.is_null(), "FG publishes its root pointer");
        let cg = nam.catalog.lookup("coarse-grained").expect("registered");
        assert_eq!(cg.partition.as_ref().unwrap().num_servers(), 4);
        let learned = nam.catalog.lookup("learned").expect("registered");
        assert_eq!(learned.kind, IndexKind::Learned);
        let model = learned.model.as_ref().expect("catalog ships the model");
        assert!(model.info().leaves > 0);
        assert_eq!(nam.catalog.names().count(), 4);
    }

    #[test]
    fn retries_ride_out_a_server_restart() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), 1000 * 8);
        let idx = Design::Cg(CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition,
            (0..1000u64).map(|i| (i * 8, i)),
            0.7,
        ));
        let cluster = nam.rdma.clone();
        let ep = Endpoint::new(&cluster);
        // Key 10 lives on server 0; crash it now, restart it later.
        cluster.fail_server(0);
        {
            let cluster = cluster.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(100)).await;
                cluster.restart_server(0);
            });
        }
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            sim.spawn(async move {
                got.set(Some(idx.lookup(&ep, 10 * 8).await));
            });
        }
        sim.run();
        assert_eq!(got.get(), Some(Ok(Some(10))));
        assert!(
            cluster.fault_stats().verbs_unreachable >= 1,
            "at least one attempt must have hit the dead server"
        );
    }

    #[test]
    fn retries_exhaust_when_the_server_stays_dead() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), 1000 * 8);
        let idx = Design::Cg(CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition,
            (0..1000u64).map(|i| (i * 8, i)),
            0.7,
        ));
        let cluster = nam.rdma.clone();
        let ep = Endpoint::new(&cluster);
        cluster.fail_server(0);
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            sim.spawn(async move {
                got.set(Some(idx.lookup(&ep, 10 * 8).await));
            });
        }
        sim.run();
        let limit = ClusterSpec::default().retry_limit;
        assert_eq!(
            got.get(),
            Some(Err(OpError::RetriesExhausted {
                attempts: limit + 1,
                last: VerbError::ServerUnreachable { server: 0 },
            }))
        );
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        // Two identical runs of the exhaust scenario end at the same
        // virtual instant: jitter comes from the DES state only.
        let end_time = |_: u32| {
            let sim = Sim::new();
            let nam = NamCluster::new(&sim, ClusterSpec::default());
            let partition = PartitionMap::range_uniform(nam.num_servers(), 100 * 8);
            let idx = Design::Cg(CoarseGrained::build(
                &nam,
                PageLayout::default(),
                partition,
                (0..100u64).map(|i| (i * 8, i)),
                0.7,
            ));
            let cluster = nam.rdma.clone();
            let ep = Endpoint::new(&cluster);
            cluster.fail_server(0);
            sim.spawn(async move {
                let _ = idx.lookup(&ep, 8).await;
            });
            sim.run();
            sim.now().as_nanos()
        };
        let a = end_time(0);
        let b = end_time(1);
        assert_eq!(a, b, "retry schedule must be deterministic");
        // Bounded: 16 retries capped at 256us each (plus jitter <= delay)
        // cannot exceed ~10ms.
        assert!(a < 10_000_000, "backoff ran away: {a}ns");
    }
}
