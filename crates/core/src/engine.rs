//! The shared traversal/SMO engine: one OLC descent loop, one
//! lock-coupled write path, one split-propagation routine, and one
//! retry/backoff layer for all three designs.
//!
//! The paper's three index distributions (§3–§5) share a single
//! concurrency substrate — optimistic lock coupling over an 8-byte
//! `(version, lock, owner, lease)` word per node, with B-link sibling
//! chases instead of descent restarts — yet they differ in how a node
//! reference becomes bytes. That difference lives behind
//! [`crate::resolve::NodeSource`]; everything protocol-shaped lives
//! here, exactly once:
//!
//! * `descend` — the optimistic read-validate-move-right loop
//!   (Listing 2's `remote_lookup` shape, shared with the hybrid's
//!   chain walk);
//! * `lock_covering_leaf` + `insert`/`delete` — the lock-coupled
//!   write path (Listing 4), including the **exactly-once retry
//!   absorption**: a re-attempt (`retrying = true`) first checks the
//!   covering leaf for the exact `(key, value)` pair and absorbs the
//!   retry if its predecessor already committed. This hint is handled
//!   here and nowhere else — the PR-2 fix had to be applied twice
//!   because FG and Hybrid each had a copy of this path;
//! * `propagate_split` — upward split propagation over remotely
//!   stored inner levels (used by sources whose upper levels the client
//!   descends itself; the hybrid instead reports splits over RPC in its
//!   `TreeWriter::complete_split`). Runs uncached on purpose: SMOs
//!   must observe fresh versions to CAS against;
//! * `scan_chain` — the §4.3 range scan with head-node group
//!   prefetch;
//! * `with_retry!` + `backoff_before_retry` — the operation retry
//!   layer with the single deterministic backoff/jitter source
//!   ([`expo_delay_nanos`]), shared with the remote-spin backoff of
//!   the one-sided verb helpers;
//! * [`RangeProgress`] — per-server completion tracking so a retried
//!   partitioned range (the coarse-grained design's broadcast) never
//!   re-ships work a previous attempt already finished.
//!
//! The coarse-grained design has no client-side page resolution (whole
//! operations ship as RPCs), so it plugs into the retry layer and
//! [`RangeProgress`] only.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use blink::node::{
    kind_of, HeadNodeRef, InnerNodeMut, InnerNodeRef, LeafNodeMut, LeafNodeRef, NodeKind,
};
use blink::{Key, PageLayout, Ptr, Value};
use rdma_sim::{Endpoint, FenceKind, OpKind, PageBuf, RegionKind, RemotePtr, VerbError};
use simnet::SimDur;

use crate::onesided::{lock_node, read_unlocked, release_on_error, unlock_only, write_unlock};
use crate::resolve::{Cached, NodeSource, OpAccess};
use crate::{Design, OpError};

fn rp(p: Ptr) -> RemotePtr {
    RemotePtr::from_page_ptr(p)
}

// ---------------------------------------------------------------------------
// Backoff: the single deterministic delay/jitter source.
// ---------------------------------------------------------------------------

/// Bounded exponential delay in nanoseconds: `base << step`, saturating,
/// clamped to `cap` (but never below `base`). Both backoff consumers —
/// the operation retry layer and the one-sided remote-spin loop — derive
/// their schedules from this one helper.
pub fn expo_delay_nanos(base: u64, step: u32, cap: u64) -> u64 {
    base.saturating_mul(1u64 << step.min(20)).min(cap.max(base))
}

/// Remote-spin backoff (one-sided READ/CAS loops): doubling from 1 µs,
/// capped at 32 µs. Without backoff, spinning clients flood the lock
/// holder's NIC with re-READs and collapse the server under contention.
/// No jitter: the spin loop decorrelates through verb latencies.
pub(crate) fn spin_backoff(attempt: u32) -> SimDur {
    SimDur::from_nanos(expo_delay_nanos(1_000, attempt, 32_000))
}

/// Sleep the bounded exponential backoff before retry number `attempt`
/// (1-based): `retry_backoff_base << (attempt - 1)`, capped at
/// `retry_backoff_cap`, plus a deterministic jitter in `[0, delay)`
/// derived from the client id, the attempt number, and the current
/// virtual time — so concurrent retriers decorrelate without any
/// wall-clock randomness.
pub(crate) async fn backoff_before_retry(ep: &Endpoint, attempt: u32) {
    let spec = ep.cluster().spec().clone();
    let delay = expo_delay_nanos(
        spec.retry_backoff_base.as_nanos(),
        attempt - 1,
        spec.retry_backoff_cap.as_nanos(),
    );
    let now = ep.cluster().sim().now().as_nanos();
    let jitter = simnet::rng::mix3(ep.client_id(), attempt as u64, now) % delay.max(1);
    ep.cluster()
        .note_region(ep.client_id(), RegionKind::Backoff, true);
    ep.cluster()
        .sim()
        .clone()
        .sleep(SimDur::from_nanos(delay + jitter))
        .await;
    ep.cluster()
        .note_region(ep.client_id(), RegionKind::Backoff, false);
}

/// Run `$op` (an expression producing a fresh future each evaluation —
/// the whole operation restarts from the root) until it succeeds, the
/// client dies, a fatal error occurs, or `retry_limit` retries of
/// transient faults are spent.
///
/// The three-argument form additionally binds `$retrying` (a `bool`,
/// false on the first attempt) in scope of `$op`, so a non-idempotent
/// operation can tell a fresh run from a re-run whose previous attempt
/// may already have committed (see [`insert`]).
macro_rules! with_retry {
    ($ep:expr, $op:expr) => {{
        #[allow(unused_variables)]
        {
            with_retry!($ep, retrying, $op)
        }
    }};
    ($ep:expr, $retrying:ident, $op:expr) => {{
        let limit = $ep.cluster().spec().retry_limit;
        let mut attempt: u32 = 0;
        loop {
            let $retrying = attempt > 0;
            match $op.await {
                Ok(v) => break Ok(v),
                Err(VerbError::Cancelled) => break Err(OpError::Cancelled),
                Err(e) if e.is_retryable() && attempt < limit => {
                    attempt += 1;
                    backoff_before_retry($ep, attempt).await;
                }
                Err(e) if e.is_retryable() => {
                    break Err(OpError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: e,
                    })
                }
                Err(e) => break Err(OpError::Fatal(e)),
            }
        }
    }};
}

// ---------------------------------------------------------------------------
// Per-design operation dispatch under the retry layer.
// ---------------------------------------------------------------------------

/// Point lookup for any design, under the retry layer.
// protolint: idempotent -- a lookup has no remote effect to duplicate.
pub(crate) async fn lookup_op(
    design: &Design,
    ep: &Endpoint,
    key: Key,
) -> Result<Option<Value>, OpError> {
    match design {
        Design::Cg(d) => with_retry!(ep, d.lookup(ep, key)),
        Design::Fg(d) => with_retry!(ep, lookup(&d.source(), ep, key)),
        Design::Hybrid(d) => with_retry!(ep, lookup(&d.source(), ep, key)),
        Design::Learned(d) => with_retry!(ep, lookup(&d.source(), ep, key)),
    }
}

/// Range query for any design, under the retry layer. For the
/// coarse-grained design a [`RangeProgress`] shared across attempts
/// dedupes per-server work, so a retried broadcast never re-ships (or
/// re-counts in telemetry) partitions that already answered.
// protolint: idempotent -- reads only; CG retry dedup via RangeProgress.
pub(crate) async fn range_op(
    design: &Design,
    ep: &Endpoint,
    lo: Key,
    hi: Key,
) -> Result<Vec<(Key, Value)>, OpError> {
    match design {
        Design::Cg(d) => {
            let progress = RangeProgress::default();
            with_retry!(ep, d.range_with(ep, lo, hi, &progress))
        }
        Design::Fg(d) => with_retry!(ep, range(&d.source(), ep, lo, hi)),
        Design::Hybrid(d) => with_retry!(ep, range(&d.source(), ep, lo, hi)),
        Design::Learned(d) => with_retry!(ep, range(&d.source(), ep, lo, hi)),
    }
}

/// Insert for any design, under the retry layer. The `retrying` hint —
/// handled in [`insert`], the engine's single copy of the lock-coupled
/// install — gives the one-sided designs exactly-once semantics under
/// retries; the CG design keeps its documented at-least-once RPC
/// semantics.
pub(crate) async fn insert_op(
    design: &Design,
    ep: &Endpoint,
    key: Key,
    value: Value,
) -> Result<(), OpError> {
    match design {
        Design::Cg(d) => with_retry!(ep, retrying, d.insert(ep, key, value, retrying)),
        Design::Fg(d) => {
            with_retry!(ep, retrying, insert(&d.source(), ep, key, value, retrying))
        }
        Design::Hybrid(d) => {
            with_retry!(ep, retrying, insert(&d.source(), ep, key, value, retrying))
        }
        Design::Learned(d) => {
            with_retry!(ep, retrying, insert(&d.source(), ep, key, value, retrying))
        }
    }
}

/// Tombstone delete for any design, under the retry layer.
// protolint: idempotent -- tombstoning an already-deleted key is a no-op.
pub(crate) async fn delete_op(design: &Design, ep: &Endpoint, key: Key) -> Result<bool, OpError> {
    match design {
        Design::Cg(d) => with_retry!(ep, d.delete(ep, key)),
        Design::Fg(d) => with_retry!(ep, delete(&d.source(), ep, key)),
        Design::Hybrid(d) => with_retry!(ep, delete(&d.source(), ep, key)),
        Design::Learned(d) => with_retry!(ep, delete(&d.source(), ep, key)),
    }
}

// ---------------------------------------------------------------------------
// The OLC descent loop.
// ---------------------------------------------------------------------------

/// Descend from the source's start to the leaf covering `key`: the
/// optimistic read / fence-validate / move-right loop shared by every
/// pointer-resolving traversal. When `path` is given, inner nodes
/// crossed on a *descending* edge are recorded (sibling chases are not
/// part of the path — Listing 2). Cache feedback: stale routing steps
/// call [`NodeSource::invalidate`]; the covering leaf is reported via
/// [`NodeSource::note_leaf`].
async fn descend<S: NodeSource>(
    src: &S,
    ep: &Endpoint,
    key: Key,
    access: OpAccess,
    mut path: Option<&mut Vec<RemotePtr>>,
) -> Result<(RemotePtr, PageBuf), VerbError> {
    let mut parent = RemotePtr::NULL;
    let mut cur = src.start(ep, key, access).await?;
    // protolint: loop(levels) -- one load per tree level; sibling chases
    // only on concurrent splits.
    loop {
        let page = src.load(ep, cur).await?;
        match kind_of(&page) {
            NodeKind::Inner => {
                let node = InnerNodeRef::new(&page);
                // `find_child` is this level's fence: it proves the
                // (optimistically read) inner copy still routes the key.
                crate::note_fence(ep, FenceKind::Revalidate, cur);
                match node.find_child(key) {
                    Some(c) => {
                        if let Some(p) = path.as_deref_mut() {
                            p.push(cur);
                        }
                        parent = cur;
                        cur = rp(c);
                    }
                    None => {
                        // The inner copy no longer covers the key (a
                        // concurrent split moved it right): chase.
                        src.invalidate(ep, key, cur);
                        cur = rp(node.right_sibling());
                    }
                }
            }
            NodeKind::Head => {
                // Head bytes never escape: only the (append-only)
                // sibling pointer is consumed — a routing re-check.
                crate::note_fence(ep, FenceKind::Revalidate, cur);
                cur = rp(HeadNodeRef::new(&page).right_sibling());
            }
            NodeKind::Leaf => {
                let leaf = LeafNodeRef::new(&page);
                // Mutation (race, `mutations` builds under
                // NAMDEX_RACE_MUT=descend-no-covers): return the leaf
                // without evaluating the `covers()` fence, letting the
                // optimistic read escape unvalidated.
                let valid = if crate::race_mut(crate::RaceMut::DescendNoCovers) {
                    true
                } else {
                    crate::note_fence(ep, FenceKind::Revalidate, cur);
                    leaf.covers(key)
                };
                if valid {
                    src.note_leaf(ep, key, cur, &page);
                    return Ok((cur, page));
                }
                // Routed too far left (stale parent copy or stale cached
                // route): invalidate the step that sent us here, chase.
                src.invalidate(ep, key, parent);
                cur = rp(leaf.right_sibling());
            }
        }
        assert!(!cur.is_null(), "fell off the B-link chain");
    }
}

/// Point lookup: descend, read the covering leaf.
pub(crate) async fn lookup<S: NodeSource>(
    src: &S,
    ep: &Endpoint,
    key: Key,
) -> Result<Option<Value>, VerbError> {
    let (_leaf, page) = descend(src, ep, key, OpAccess::Lookup, None).await?;
    Ok(LeafNodeRef::new(&page).get(key))
}

/// Range query over `[lo, hi]` with head-node prefetch. Client-descent
/// sources reach the covering leaf first (chases before the scan issue
/// no prefetch, matching Listing 2); leaf-resolving sources hand the
/// whole chain walk to [`scan_chain`], which prefetches through any head
/// it meets.
pub(crate) async fn range<S: NodeSource>(
    src: &S,
    ep: &Endpoint,
    lo: Key,
    hi: Key,
) -> Result<Vec<(Key, Value)>, VerbError> {
    let mut out = Vec::new();
    if S::CLIENT_DESCENT {
        let (start, page) = descend(src, ep, lo, OpAccess::Range, None).await?;
        scan_chain(ep, src.layout(), start, Some(page), lo, hi, &mut out).await?;
    } else {
        let start = src.start(ep, lo, OpAccess::Range).await?;
        scan_chain(ep, src.layout(), start, None, lo, hi, &mut out).await?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The lock-coupled write path.
// ---------------------------------------------------------------------------

/// Lock the leaf covering `key`, starting from `cur` (with `pending` as
/// its already-fetched page, if any): lock, re-validate coverage under
/// the lock, move right and retry on failure — the
/// `remote_upgradeToWriteLockOrRestart` + move-right loop of Listing 4.
// protolint: role(acquire) -- returns with the covering leaf locked.
async fn lock_covering_leaf<S: NodeSource>(
    src: &S,
    ep: &Endpoint,
    key: Key,
    mut cur: RemotePtr,
    mut pending: Option<PageBuf>,
) -> Result<(RemotePtr, PageBuf), VerbError> {
    // protolint: loop(spin) -- move-right retries only under contention.
    loop {
        // protolint: arm-by(first-page) -- client-descent callers hand
        // over the descent's leaf copy; leaf-resolving callers load.
        let mut page = match pending.take() {
            Some(p) => p,
            None => src.load(ep, cur).await?,
        };
        if kind_of(&page) == NodeKind::Head {
            crate::note_fence(ep, FenceKind::Revalidate, cur);
            cur = rp(HeadNodeRef::new(&page).right_sibling());
            continue;
        }
        lock_node(ep, cur, &mut page).await?;
        let leaf = LeafNodeRef::new(&page);
        // Coverage re-check *under the lock* (the acquire CAS already
        // synchronized the copy; this is the semantic fence).
        crate::note_fence(ep, FenceKind::Revalidate, cur);
        if leaf.covers(key) {
            src.note_leaf(ep, key, cur, &page);
            return Ok((cur, page));
        }
        let next = rp(leaf.right_sibling());
        unlock_only(ep, cur).await?;
        src.invalidate(ep, key, RemotePtr::NULL);
        cur = next;
    }
}

/// A source the engine can also *write* through: page allocation for
/// splits and upper-level split registration.
#[allow(async_fn_in_trait)]
pub(crate) trait TreeWriter: NodeSource {
    /// Allocate a fresh remote page for a split (`RDMA_ALLOC`,
    /// Listing 4).
    async fn alloc(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError>;

    /// Register a committed leaf split with the upper levels: `left`
    /// (high key now `sep`) kept its pointer, `right` (high key
    /// `old_high`) is new. `path` is the descent's inner-node trail for
    /// client-descent sources (empty otherwise).
    async fn complete_split(
        &self,
        ep: &Endpoint,
        path: Vec<RemotePtr>,
        sep: Key,
        left: RemotePtr,
        right: RemotePtr,
        old_high: Key,
    ) -> Result<(), VerbError>;
}

impl<S: TreeWriter> TreeWriter for Cached<'_, S> {
    async fn alloc(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError> {
        self.inner().alloc(ep).await
    }

    async fn complete_split(
        &self,
        ep: &Endpoint,
        path: Vec<RemotePtr>,
        sep: Key,
        left: RemotePtr,
        right: RemotePtr,
        old_high: Key,
    ) -> Result<(), VerbError> {
        // The splitting client knows its own cached state is stale: fix
        // routes eagerly, drop the parent page copy (its remote original
        // is about to change). Other clients correct lazily through the
        // validation rule.
        if let Some(cache) = self.cache_layer() {
            match self.cache_policy() {
                crate::resolve::CachePolicy::Routes => {
                    cache.note_split(ep.client_id(), sep, old_high, left.raw(), right.raw());
                }
                crate::resolve::CachePolicy::InnerPages => {
                    if let Some(&parent) = path.last() {
                        cache.drop_page(ep.client_id(), parent);
                    }
                }
            }
        }
        self.inner()
            .complete_split(ep, path, sep, left, right, old_high)
            .await
    }
}

/// One insert attempt (`remote_insert`, Listing 2/4): descend (recording
/// the inner path for client-descent sources), lock the covering leaf,
/// install the pair, write back and FAA-unlock; splits allocate a remote
/// page, write right-sibling-first, and register upward through
/// [`TreeWriter::complete_split`].
///
/// **Exactly-once under retries** — the one place the `retrying` hint is
/// interpreted: the attempt commits at the leaf's unlock FAA, so a later
/// failure (split registration, a refused unlock) leaves the install in
/// place; on `retrying = true` the covering leaf is first checked for a
/// live `(key, value)` pair and the retry is absorbed if its predecessor
/// already committed. (Non-unique-index caveat: a pair some concurrent
/// operation installed independently is indistinguishable from our own
/// committed install and is absorbed too.) Any lock the attempt holds
/// when it fails is best-effort released so the retry does not stall on
/// it until the lease break.
pub(crate) async fn insert<S: TreeWriter>(
    src: &S,
    ep: &Endpoint,
    key: Key,
    value: Value,
    retrying: bool,
) -> Result<(), VerbError> {
    let mut path = Vec::new();
    let (start, first_page) = if S::CLIENT_DESCENT {
        let (c, p) = descend(src, ep, key, OpAccess::Insert, Some(&mut path)).await?;
        (c, Some(p))
    } else {
        (src.start(ep, key, OpAccess::Insert).await?, None)
    };
    let (cur, mut page) = lock_covering_leaf(src, ep, key, start, first_page).await?;

    if retrying && LeafNodeRef::new(&page).contains(key, value) {
        // The previous attempt committed before its post-commit verb
        // failed. (If it had also split, the new leaf stays reachable
        // via the B-link sibling chain even when its parent entry is
        // missing; a later split re-propagates.)
        return unlock_only(ep, cur).await;
    }

    let full = LeafNodeMut::new(&mut page).insert(key, value).is_err();
    if !full {
        let res = write_unlock(ep, cur, &page, None).await;
        return release_on_error(ep, cur, res).await;
    }

    // Split: allocate remotely, split the local copy, write both halves
    // (right first, Listing 4), unlock, register upward.
    let res = src.alloc(ep).await;
    let right_ptr = release_on_error(ep, cur, res).await?;
    let mut right_page = src.layout().alloc_page();
    let sep = LeafNodeMut::new(&mut page).split_into(
        &mut right_page,
        cur.as_page_ptr(),
        right_ptr.as_page_ptr(),
    );
    let old_high = LeafNodeRef::new(&right_page).high_key();
    {
        let target = if key <= sep {
            &mut page
        } else {
            &mut *right_page
        };
        if LeafNodeMut::new(target).insert(key, value).is_err() {
            let err = Err(VerbError::Invariant("split leaf half refused the insert"));
            return release_on_error(ep, cur, err).await;
        }
    }
    let res = write_unlock(ep, cur, &page, Some((right_ptr, &right_page))).await;
    release_on_error(ep, cur, res).await?;
    src.complete_split(ep, path, sep, cur, right_ptr, old_high)
        .await
}

/// The same exactly-once absorption rule, for designs that ship whole
/// inserts to the owning server as RPCs (the coarse-grained design): a
/// retried attempt first probes the local tree for a live `(key, value)`
/// pair and absorbs the duplicate — the previous attempt's RPC may have
/// applied before its response was lost (server crash, dropped ack), and
/// re-applying would duplicate the entry. Runs inside the server's RPC
/// handler; returns the leaf to lock (`None` when the retry was
/// absorbed) and the CPU work to charge.
pub(crate) fn apply_insert_local(
    t: &mut blink::LocalTree,
    key: Key,
    value: Value,
    retrying: bool,
) -> (Option<Ptr>, blink::WorkStats) {
    // Mutation A (`mutations` builds only): drop the retry flag, so a
    // retried insert re-applies unconditionally — the historical CG
    // duplicate-insert-on-lost-response bug, kept re-introducible so the
    // model checker can prove it detects this class of violation.
    let retrying = retrying && !cfg!(feature = "mutations");
    if retrying {
        let mut dup = Vec::new();
        let probe = t.range(key, key, &mut dup);
        if dup.iter().any(|&(_, v)| v == value) {
            return (None, probe);
        }
        let (leaf, mut work) = t.insert_at_leaf(key, value);
        work.absorb(probe);
        return (Some(leaf), work);
    }
    let (leaf, work) = t.insert_at_leaf(key, value);
    (Some(leaf), work)
}

/// One delete attempt: lock the covering leaf, tombstone the first live
/// entry under `key`; returns whether an entry was deleted. Idempotent,
/// so no retry hint is needed.
pub(crate) async fn delete<S: NodeSource>(
    src: &S,
    ep: &Endpoint,
    key: Key,
) -> Result<bool, VerbError> {
    let (start, first_page) = if S::CLIENT_DESCENT {
        let (c, p) = descend(src, ep, key, OpAccess::Delete, None).await?;
        (c, Some(p))
    } else {
        (src.start(ep, key, OpAccess::Delete).await?, None)
    };
    let (cur, mut page) = lock_covering_leaf(src, ep, key, start, first_page).await?;
    let deleted = LeafNodeMut::new(&mut page).mark_deleted(key);
    if deleted {
        let res = write_unlock(ep, cur, &page, None).await;
        release_on_error(ep, cur, res).await?;
    } else {
        unlock_only(ep, cur).await?;
    }
    Ok(deleted)
}

// ---------------------------------------------------------------------------
// Split propagation over remotely stored inner levels.
// ---------------------------------------------------------------------------

/// Remotely stored upper levels the engine can propagate splits through:
/// the published root plus split-page allocation. Implemented by the
/// fine-grained design; the hybrid's upper levels are server-local and
/// take split registrations over RPC instead.
#[allow(async_fn_in_trait)]
pub(crate) trait RemoteUpper {
    /// Page geometry of the inner levels.
    fn layout(&self) -> PageLayout;
    /// Current root pointer (the catalog entry).
    fn root_ptr(&self) -> RemotePtr;
    /// Catalog check-and-set: publish `new` as root iff the root is
    /// still `old`; must not await between check and set.
    fn install_root(&self, old: RemotePtr, new: RemotePtr) -> bool;
    /// Allocate a fresh remote page for an inner split or a new root.
    async fn alloc_node(&self, ep: &Endpoint) -> Result<RemotePtr, VerbError>;
}

/// Install `(sep, right)` into the parent level, splitting parents as
/// needed; grows a new root when the split reaches the top. Reads pages
/// directly (uncached): SMOs must CAS against fresh versions.
pub(crate) async fn propagate_split<U: RemoteUpper>(
    up: &U,
    ep: &Endpoint,
    mut path: Vec<RemotePtr>,
    mut sep: Key,
    mut left: RemotePtr,
    mut right: RemotePtr,
    mut level: u8,
) -> Result<(), VerbError> {
    let ps = up.layout().page_size();
    // protolint: loop(ascend) -- climbs as far as parents keep splitting.
    loop {
        let mut cur = match path.pop() {
            Some(p) => p,
            None => {
                if try_grow_root(up, ep, sep, left, right, level).await? {
                    return Ok(());
                }
                // The tree grew concurrently: locate the parent level
                // under the new root and continue there.
                path = path_to_level(up, ep, sep, level).await?;
                match path.pop() {
                    Some(p) => p,
                    None => {
                        return Err(VerbError::Invariant(
                            "fresh descent to an existing level returned no path",
                        ))
                    }
                }
            }
        };

        // Lock the covering inner node (move right as needed).
        let mut page;
        // protolint: loop(spin) -- move-right retries only under contention.
        loop {
            page = read_unlocked(ep, cur, ps).await?;
            let node = InnerNodeRef::new(&page);
            crate::note_fence(ep, FenceKind::Revalidate, cur);
            if !node.covers(sep) {
                cur = rp(node.right_sibling());
                continue;
            }
            lock_node(ep, cur, &mut page).await?;
            let node = InnerNodeRef::new(&page);
            crate::note_fence(ep, FenceKind::Revalidate, cur);
            if node.covers(sep) {
                break;
            }
            let next = rp(node.right_sibling());
            unlock_only(ep, cur).await?;
            cur = next;
        }

        let full = InnerNodeMut::new(&mut page)
            .install_split(sep, right.as_page_ptr())
            .is_err();
        if !full {
            let res = write_unlock(ep, cur, &page, None).await;
            release_on_error(ep, cur, res).await?;
            return Ok(());
        }

        // Parent full: split it (holding its lock), install into the
        // covering half, and carry the parent split upward.
        let res = up.alloc_node(ep).await;
        let parent_right = release_on_error(ep, cur, res).await?;
        let mut pright_page = up.layout().alloc_page();
        let psep = InnerNodeMut::new(&mut page).split_into(
            &mut pright_page,
            cur.as_page_ptr(),
            parent_right.as_page_ptr(),
        );
        {
            let target = if sep <= psep {
                &mut page
            } else {
                &mut *pright_page
            };
            if InnerNodeMut::new(target)
                .install_split(sep, right.as_page_ptr())
                .is_err()
            {
                let err = Err(VerbError::Invariant("split parent half refused the entry"));
                return release_on_error(ep, cur, err).await;
            }
        }
        let res = write_unlock(ep, cur, &page, Some((parent_right, &pright_page))).await;
        release_on_error(ep, cur, res).await?;
        sep = psep;
        left = cur;
        right = parent_right;
        level += 1;
    }
}

/// Attempt to install a new root above a split of the current root.
/// Returns false if the root changed concurrently (the freshly written
/// root page is leaked; harmless — pools are bump allocators).
async fn try_grow_root<U: RemoteUpper>(
    up: &U,
    ep: &Endpoint,
    sep: Key,
    left: RemotePtr,
    right: RemotePtr,
    level: u8,
) -> Result<bool, VerbError> {
    if up.root_ptr() != left {
        return Ok(false);
    }
    let new_root = up.alloc_node(ep).await?;
    let mut page = up.layout().alloc_page();
    InnerNodeMut::init_root(
        &mut page,
        level,
        sep,
        left.as_page_ptr(),
        right.as_page_ptr(),
    );
    ep.write(new_root, &page).await?;
    Ok(up.install_root(left, new_root))
}

/// Fresh descent from the current root down to (and including) an inner
/// node at `level` covering `key`.
async fn path_to_level<U: RemoteUpper>(
    up: &U,
    ep: &Endpoint,
    key: Key,
    level: u8,
) -> Result<Vec<RemotePtr>, VerbError> {
    let ps = up.layout().page_size();
    let mut path = Vec::new();
    let mut cur = up.root_ptr();
    // protolint: loop(levels) -- one read per level down to `level`.
    loop {
        let page = read_unlocked(ep, cur, ps).await?;
        debug_assert_eq!(kind_of(&page), NodeKind::Inner, "levels > 0 are inner");
        let node = InnerNodeRef::new(&page);
        crate::note_fence(ep, FenceKind::Revalidate, cur);
        if !node.covers(key) {
            cur = rp(node.right_sibling());
            continue;
        }
        if node.level() == level {
            path.push(cur);
            return Ok(path);
        }
        match node.find_child(key) {
            Some(c) => {
                path.push(cur);
                cur = rp(c);
            }
            None => cur = rp(node.right_sibling()),
        }
    }
}

/// Timed round-robin page allocation over all memory servers
/// (`RDMA_ALLOC`, Listing 4) — the placement policy both one-sided
/// designs share for split pages.
pub(crate) async fn rr_alloc(
    ep: &Endpoint,
    rr: &Cell<usize>,
    page_size: usize,
) -> Result<RemotePtr, VerbError> {
    let s = rr.get();
    rr.set((s + 1) % ep.cluster().num_servers());
    ep.alloc(s, page_size as u64).await
}

// ---------------------------------------------------------------------------
// Range scan over the leaf chain.
// ---------------------------------------------------------------------------

/// Scan the leaf chain from `start` collecting live entries in
/// `[lo, hi]`, prefetching whole groups when head nodes are met.
/// `start_page`, when given, is an already-fetched copy of `start`.
pub(crate) async fn scan_chain(
    ep: &Endpoint,
    layout: PageLayout,
    start: RemotePtr,
    start_page: Option<PageBuf>,
    lo: Key,
    hi: Key,
    out: &mut Vec<(Key, Value)>,
) -> Result<(), VerbError> {
    let ps = layout.page_size();
    let mut prefetched: BTreeMap<u64, PageBuf> = BTreeMap::new();
    let mut cur = start;
    let mut pending = start_page;
    // Unconsumed prefetched pages never escape into the result; tell the
    // observer bus so pending racy reads on them are closed as discards.
    let discard_rest = |ep: &Endpoint, rest: &BTreeMap<u64, PageBuf>| {
        for &raw in rest.keys() {
            crate::note_fence(ep, FenceKind::Discard, RemotePtr::from_raw(raw));
        }
    };
    // protolint: loop(chain) -- one read per chained leaf/head; trip
    // count scales with the range width, not the tree height.
    loop {
        if cur.is_null() {
            discard_rest(ep, &prefetched);
            return Ok(());
        }
        let page = match pending.take() {
            Some(p) => p,
            None => match prefetched.remove(&cur.raw()) {
                Some(p)
                    if !blink::layout::lock_word::is_locked(blink::node::version_lock_of(&p)) =>
                {
                    // The prefetched copy's lock-word inspection is this
                    // page's fence: an unlocked snapshot is safe to scan
                    // under the B-link invariants.
                    crate::note_fence(ep, FenceKind::Revalidate, cur);
                    p
                }
                _ => read_unlocked(ep, cur, ps).await?,
            },
        };
        match kind_of(&page) {
            NodeKind::Head => {
                // Prefetch the whole group with selectively signalled
                // READs (§4.3) — one latency for the group.
                crate::note_fence(ep, FenceKind::Revalidate, cur);
                let head = HeadNodeRef::new(&page);
                let reqs: Vec<(RemotePtr, usize)> = head
                    .ptrs()
                    .iter()
                    .map(|p| (RemotePtr::from_page_ptr(*p), ps))
                    .collect();
                if !reqs.is_empty() {
                    let pages = ep.read_many(&reqs).await?;
                    for ((p, _), bytes) in reqs.iter().zip(pages) {
                        prefetched.insert(p.raw(), bytes);
                    }
                }
                cur = rp(head.right_sibling());
            }
            NodeKind::Leaf => {
                let leaf = LeafNodeRef::new(&page);
                crate::note_fence(ep, FenceKind::Revalidate, cur);
                leaf.collect_range(lo, hi, out);
                if leaf.high_key() >= hi {
                    discard_rest(ep, &prefetched);
                    return Ok(());
                }
                cur = rp(leaf.right_sibling());
            }
            // protolint: allow(hot-panic) -- leaf chains never link to an
            // inner node; reaching one means corrupted pages, not a state
            // an operation can recover from.
            NodeKind::Inner => unreachable!("inner node in the leaf chain"),
        }
    }
}

// ---------------------------------------------------------------------------
// Retried partitioned-range dedup.
// ---------------------------------------------------------------------------

/// Per-server completion tracking for a partitioned range query that may
/// be retried: servers that already shipped their rows are skipped by
/// later attempts, so a retried broadcast range (the coarse-grained
/// design on hash partitions) neither re-ships pages nor double-counts
/// bytes/RPCs in telemetry. Created once per *operation*, outside the
/// retry loop.
#[derive(Default)]
pub struct RangeProgress {
    done: RefCell<BTreeMap<usize, Vec<(Key, Value)>>>,
}

impl RangeProgress {
    /// Whether server `s` already shipped its rows in a prior attempt.
    pub fn is_done(&self, s: usize) -> bool {
        self.done.borrow().contains_key(&s)
    }

    /// Record server `s`'s rows.
    pub fn record(&self, s: usize, rows: Vec<(Key, Value)>) {
        self.done.borrow_mut().insert(s, rows);
    }

    /// Forget everything recorded so far. Range-partitioned retries call
    /// this at attempt start: their covering servers are re-queried
    /// wholesale (each attempt is a consistent fresh pass), while hash
    /// broadcasts keep progress across attempts and dedupe instead.
    pub fn reset(&self) {
        self.done.borrow_mut().clear();
    }

    /// Drain all recorded rows, concatenated in server order (key order
    /// for range partitions); `sort` re-sorts for hash partitions, whose
    /// per-server results interleave in key space.
    pub fn merge(&self, sort: bool) -> Vec<(Key, Value)> {
        let map = std::mem::take(&mut *self.done.borrow_mut());
        let mut out: Vec<(Key, Value)> = map.into_values().flatten().collect();
        if sort {
            out.sort_unstable();
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Telemetry bracketing for Design-level operations.
// ---------------------------------------------------------------------------

/// Bracket a design-level operation with op-span telemetry notes.
pub(crate) async fn with_op_span<T>(
    ep: &Endpoint,
    kind: OpKind,
    fut: impl std::future::Future<Output = Result<T, OpError>>,
) -> Result<T, OpError> {
    ep.cluster().note_op_start(ep.client_id(), kind);
    let res = fut.await;
    ep.cluster().note_op_end(ep.client_id(), kind, res.is_ok());
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fg::{FgConfig, FineGrained};
    use crate::hybrid::Hybrid;
    use crate::CoarseGrained;
    use blink::PageLayout;
    use nam::{NamCluster, PartitionMap};
    use rdma_sim::{Cluster, ClusterSpec};
    use simnet::Sim;
    use std::cell::Cell;
    use std::rc::Rc;

    fn small_cfg() -> FgConfig {
        FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 4,
            cache_capacity: None,
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Satellite: the merged backoff helper must reproduce both
    /// pre-merge schedules exactly. The lib.rs retry path is pinned by a
    /// digest over a (base, cap, attempt, client, now) matrix of
    /// delay+jitter values computed with the frozen pre-merge formula.
    #[test]
    fn merged_backoff_schedule_is_unchanged() {
        // Frozen copy of the pre-merge lib.rs formula.
        let old_retry = |base: u64, cap_raw: u64, attempt: u32| -> u64 {
            let cap = cap_raw.max(base);
            base.saturating_mul(1u64 << (attempt - 1).min(20)).min(cap)
        };
        let mut stream = Vec::new();
        for &(base, cap) in &[
            (1_000u64, 256_000u64),
            (500, 4_000),
            (1, u64::MAX),
            (8_000, 1_000), // cap below base: clamps to base
        ] {
            for attempt in 1u32..=24 {
                for &client in &[0u64, 7, 1_000_003] {
                    for &now in &[0u64, 123_456_789, u64::from(u32::MAX)] {
                        let old_delay = old_retry(base, cap, attempt);
                        let new_delay = expo_delay_nanos(base, attempt - 1, cap);
                        assert_eq!(old_delay, new_delay, "base={base} cap={cap} a={attempt}");
                        let jitter =
                            simnet::rng::mix3(client, attempt as u64, now) % old_delay.max(1);
                        stream.extend_from_slice(&(old_delay + jitter).to_le_bytes());
                    }
                }
            }
        }
        assert_eq!(
            fnv1a(&stream),
            0x9a99_7462_081f_8a0b,
            "merged retry-backoff schedule drifted from the pre-merge golden"
        );

        // Frozen copy of the pre-merge onesided.rs spin formula.
        for attempt in 0u32..=64 {
            assert_eq!(
                spin_backoff(attempt),
                SimDur::from_micros(1 << attempt.min(5)),
                "spin schedule drifted at attempt {attempt}"
            );
        }
    }

    #[test]
    fn fg_retried_insert_is_absorbed_not_duplicated() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let idx = FineGrained::build(&cluster, small_cfg(), (0..100u64).map(|i| (i * 8, i)));
        let ep = rdma_sim::Endpoint::new(&cluster);
        sim.spawn(async move {
            // First attempt commits at the leaf unlock...
            idx.insert(&ep, 41, 999).await.unwrap();
            // ...then a post-commit verb "fails"; the retry layer re-runs
            // with `retrying = true`, which must absorb the install.
            insert(&idx.source(), &ep, 41, 999, true).await.unwrap();
            assert_eq!(idx.range(&ep, 41, 41).await.unwrap(), vec![(41, 999)]);
            // A genuinely fresh duplicate still installs (non-unique
            // index), and retrying with a different value installs too.
            idx.insert(&ep, 41, 999).await.unwrap();
            insert(&idx.source(), &ep, 41, 777, true).await.unwrap();
            let rows = idx.range(&ep, 41, 41).await.unwrap();
            assert_eq!(rows.len(), 3, "absorption is exact-pair only: {rows:?}");
        });
        sim.run();
    }

    #[test]
    fn hybrid_retried_insert_is_absorbed_not_duplicated() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(nam.num_servers(), 100 * 8);
        let idx = Hybrid::build(
            &nam,
            small_cfg(),
            partition,
            (0..100u64).map(|i| (i * 8, i)),
        );
        let ep = rdma_sim::Endpoint::new(&nam.rdma);
        sim.spawn(async move {
            idx.insert(&ep, 41, 999).await.unwrap();
            insert(&idx.source(), &ep, 41, 999, true).await.unwrap();
            assert_eq!(idx.range(&ep, 41, 41).await.unwrap(), vec![(41, 999)]);
            idx.insert(&ep, 41, 999).await.unwrap();
            insert(&idx.source(), &ep, 41, 777, true).await.unwrap();
            let rows = idx.range(&ep, 41, 41).await.unwrap();
            assert_eq!(rows.len(), 3, "absorption is exact-pair only: {rows:?}");
        });
        sim.run();
    }

    /// Satellite fix: a retried broadcast range must not re-RPC servers
    /// that already shipped their rows in a failed attempt.
    #[test]
    fn retried_broadcast_range_skips_completed_servers() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::hash(nam.num_servers());
        let idx = Design::Cg(CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition,
            (0..1000u64).map(|i| (i * 8, i)),
            0.7,
        ));
        let cluster = nam.rdma.clone();
        let ep = rdma_sim::Endpoint::new(&cluster);
        // Servers are visited in order 0,1,2,3; kill 2 so the first
        // attempt completes 0 and 1, then aborts. Restart it later so a
        // retry finishes 2 and 3.
        cluster.fail_server(2);
        {
            let cluster = cluster.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDur::from_micros(100)).await;
                cluster.restart_server(2);
            });
        }
        let got = Rc::new(Cell::new(0usize));
        {
            let got = got.clone();
            sim.spawn(async move {
                let rows = idx.range(&ep, 80, 160).await.unwrap();
                assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
                got.set(rows.len());
            });
        }
        sim.run();
        assert_eq!(got.get(), 11, "keys 80,88,...,160");
        // The dedup: servers 0 and 1 answered exactly once despite the
        // retries (before the fix every attempt re-broadcast to them).
        assert_eq!(cluster.server_stats(0).rpcs, 1, "server 0 re-broadcast");
        assert_eq!(cluster.server_stats(1).rpcs, 1, "server 1 re-broadcast");
        assert_eq!(cluster.server_stats(3).rpcs, 1, "server 3 answers once");
        assert!(
            cluster.fault_stats().verbs_unreachable >= 1,
            "at least one attempt must have hit the dead server"
        );
    }
}
