//! Epoch-based garbage collection of tombstoned entries.
//!
//! Deletes only set a per-entry delete bit (§3.2); reclaiming the space
//! is deferred to epoch GC passes:
//!
//! * **Coarse-grained** (§3.2): each memory server runs its own GC over
//!   its local tree "in regular intervals" — modelled as one RPC per
//!   server whose handler compacts every leaf, charged for the pages it
//!   touches.
//! * **Fine-grained** (§4.2): GC runs *globally from a compute server*,
//!   because local and remote atomics must not mix on the same words
//!   (reference 10 in the paper): the collector walks the leaf chain with the
//!   one-sided protocol, locking and rewriting only leaves that carry
//!   tombstones.
//! * **Hybrid** (§5.2): the leaf chain is collected by the global
//!   one-sided collector; upper levels by per-server local GC. No
//!   synchronisation between the two is needed since delete bits are
//!   set consistently.

use blink::node::{kind_of, HeadNodeRef, LeafNodeMut, LeafNodeRef, NodeKind};
use nam::{handler_cpu_time, msg};
use rdma_sim::{Endpoint, OpKind, RemotePtr, RpcReply, VerbError};

use crate::cg::CoarseGrained;
use crate::fg::FineGrained;
use crate::hybrid::Hybrid;
use crate::onesided::{lock_node, read_unlocked, write_unlock};

/// Report to the installed verb observers that an epoch pass retired
/// `[ptr, ptr + len)` — any later verb touching the region is a
/// use-after-free. A flag check when nothing is listening (the
/// simulator itself never reuses retired regions: the pools are bump
/// allocators, so reclamation is purely a protocol-level event).
pub fn note_freed(cluster: &rdma_sim::Cluster, ptr: RemotePtr, len: usize) {
    cluster.note_freed(ptr.server(), ptr.offset(), len);
}

/// One CG epoch: compact every server's local tree. Returns entries
/// reclaimed.
pub async fn cg_gc_pass(idx: &CoarseGrained, ep: &Endpoint) -> Result<usize, VerbError> {
    ep.cluster().note_op_start(ep.client_id(), OpKind::Gc);
    let res = cg_gc_pass_inner(idx, ep).await;
    ep.cluster()
        .note_op_end(ep.client_id(), OpKind::Gc, res.is_ok());
    res
}

async fn cg_gc_pass_inner(idx: &CoarseGrained, ep: &Endpoint) -> Result<usize, VerbError> {
    let mut reclaimed = 0;
    for (s, node) in idx.nodes().iter().enumerate() {
        let node = node.clone();
        let spec = idx.cluster().spec().clone();
        reclaimed += ep
            .rpc(s, msg::ack(), move || {
                let (freed, pages) = node.with_tree(|t| (t.gc_compact(), t.num_pages()));
                let work = blink::WorkStats {
                    nodes_visited: pages as u32,
                    entries_scanned: freed as u32,
                    ..blink::WorkStats::default()
                };
                RpcReply {
                    value: freed,
                    cpu: handler_cpu_time(&spec, work),
                    resp_bytes: msg::ack(),
                }
            })
            .await?;
    }
    Ok(reclaimed)
}

/// Walk a fine-grained leaf chain from `first`, compacting tombstoned
/// leaves with the one-sided protocol. Returns entries reclaimed.
async fn onesided_chain_gc(
    ep: &Endpoint,
    first: RemotePtr,
    page_size: usize,
) -> Result<usize, VerbError> {
    let mut reclaimed = 0;
    let mut cur = first;
    while !cur.is_null() {
        let page = read_unlocked(ep, cur, page_size).await?;
        // Chain-walk fence: the collector consults only monotone
        // structural fields of the optimistic snapshot — sibling
        // pointers (pools are bump allocators, pages are never reused)
        // and delete bits (only ever set). A stale skip is re-collected
        // by the next pass; a stale compact decision is revalidated by
        // the lock CAS below before any bytes are rewritten.
        crate::note_fence(ep, rdma_sim::FenceKind::Revalidate, cur);
        match kind_of(&page) {
            NodeKind::Head => {
                cur = RemotePtr::from_page_ptr(HeadNodeRef::new(&page).right_sibling());
            }
            NodeKind::Leaf => {
                let leaf = LeafNodeRef::new(&page);
                let next = RemotePtr::from_page_ptr(leaf.right_sibling());
                let has_tombstones = leaf.live_count() < leaf.count();
                if has_tombstones {
                    // Lock, compact a fresh copy, write back.
                    let mut locked_page = page;
                    lock_node(ep, cur, &mut locked_page).await?;
                    reclaimed += LeafNodeMut::new(&mut locked_page).compact();
                    write_unlock(ep, cur, &locked_page, None).await?;
                }
                cur = next;
            }
            NodeKind::Inner => unreachable!("inner node in the leaf chain"),
        }
    }
    Ok(reclaimed)
}

/// One FG epoch: the global compute-server collector walks the leaf
/// chain. Returns entries reclaimed.
pub async fn fg_gc_pass(idx: &FineGrained, ep: &Endpoint) -> Result<usize, VerbError> {
    ep.cluster().note_op_start(ep.client_id(), OpKind::Gc);
    let res = onesided_chain_gc(ep, idx.first(), idx.layout().page_size()).await;
    ep.cluster()
        .note_op_end(ep.client_id(), OpKind::Gc, res.is_ok());
    res
}

/// One hybrid epoch: one-sided leaf-chain collection plus per-server
/// upper-level compaction. Returns leaf entries reclaimed.
pub async fn hybrid_gc_pass(idx: &Hybrid, ep: &Endpoint) -> Result<usize, VerbError> {
    ep.cluster().note_op_start(ep.client_id(), OpKind::Gc);
    let res = hybrid_gc_pass_inner(idx, ep).await;
    ep.cluster()
        .note_op_end(ep.client_id(), OpKind::Gc, res.is_ok());
    res
}

async fn hybrid_gc_pass_inner(idx: &Hybrid, ep: &Endpoint) -> Result<usize, VerbError> {
    let reclaimed = onesided_chain_gc(ep, idx.first(), idx.layout().page_size()).await?;
    // Upper levels: local GC per memory server (stale leaf-pointer
    // entries are repointed, not tombstoned, so this is usually a no-op;
    // still charged as a pass).
    for (s, node) in idx.nodes().iter().enumerate() {
        let node = node.clone();
        let spec = idx.cluster().spec().clone();
        ep.rpc(s, msg::ack(), move || {
            let (freed, pages) = node.with_tree(|t| (t.gc_compact(), t.num_pages()));
            let work = blink::WorkStats {
                nodes_visited: pages as u32,
                entries_scanned: freed as u32,
                ..blink::WorkStats::default()
            };
            RpcReply {
                value: (),
                cpu: handler_cpu_time(&spec, work),
                resp_bytes: msg::ack(),
            }
        })
        .await?;
    }
    Ok(reclaimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fg::FgConfig;
    use blink::PageLayout;
    use nam::{NamCluster, PartitionMap};
    use rdma_sim::{Cluster, ClusterSpec};
    use simnet::Sim;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn cg_gc_reclaims() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let partition = PartitionMap::range_uniform(4, 1000 * 8);
        let idx = CoarseGrained::build(
            &nam,
            PageLayout::default(),
            partition,
            (0..1000u64).map(|i| (i * 8, i)),
            0.7,
        );
        let ep = Endpoint::new(&nam.rdma);
        let freed = Rc::new(Cell::new(0usize));
        {
            let idx = idx.clone();
            let freed = freed.clone();
            sim.spawn(async move {
                for i in (0..1000u64).step_by(2) {
                    idx.delete(&ep, i * 8).await.unwrap();
                }
                freed.set(cg_gc_pass(&idx, &ep).await.unwrap());
                // Survivors intact after compaction.
                assert_eq!(idx.lookup(&ep, 8).await.unwrap(), Some(1));
                assert_eq!(idx.lookup(&ep, 0).await.unwrap(), None);
            });
        }
        sim.run();
        assert_eq!(freed.get(), 500);
    }

    #[test]
    fn fg_gc_reclaims() {
        let sim = Sim::new();
        let cluster = Cluster::new(&sim, ClusterSpec::default());
        let cfg = FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 4,
            cache_capacity: None,
        };
        let idx = FineGrained::build(&cluster, cfg, (0..500u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&cluster);
        let freed = Rc::new(Cell::new(0usize));
        {
            let idx = idx.clone();
            let freed = freed.clone();
            sim.spawn(async move {
                for i in (0..500u64).step_by(5) {
                    assert!(idx.delete(&ep, i * 8).await.unwrap());
                }
                freed.set(fg_gc_pass(&idx, &ep).await.unwrap());
                assert_eq!(idx.lookup(&ep, 0).await.unwrap(), None);
                assert_eq!(idx.lookup(&ep, 8).await.unwrap(), Some(1));
                // Full scan sees exactly the survivors.
                let rows = idx.range(&ep, 0, u64::MAX - 1).await.unwrap();
                assert_eq!(rows.len(), 400);
            });
        }
        sim.run();
        assert_eq!(freed.get(), 100);
    }

    #[test]
    fn hybrid_gc_reclaims() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::default());
        let cfg = FgConfig {
            layout: PageLayout::new(200),
            fill: 0.7,
            head_stride: 4,
            cache_capacity: None,
        };
        let partition = PartitionMap::range_uniform(4, 400 * 8);
        let idx = Hybrid::build(&nam, cfg, partition, (0..400u64).map(|i| (i * 8, i)));
        let ep = Endpoint::new(&nam.rdma);
        let freed = Rc::new(Cell::new(0usize));
        {
            let idx = idx.clone();
            let freed = freed.clone();
            sim.spawn(async move {
                for i in 0..50u64 {
                    idx.delete(&ep, i * 8).await.unwrap();
                }
                freed.set(hybrid_gc_pass(&idx, &ep).await.unwrap());
                let rows = idx.range(&ep, 0, u64::MAX - 1).await.unwrap();
                assert_eq!(rows.len(), 350);
            });
        }
        sim.run();
        assert_eq!(freed.get(), 50);
    }
}
