#![warn(missing_docs)]

//! # ycsb — the paper's modified Yahoo! Cloud Serving Benchmark
//!
//! §6 of the paper modifies YCSB for tree-index evaluation (Table 3):
//!
//! | Workload | Point queries | Range queries (sel = s) | Inserts |
//! |----------|---------------|--------------------------|---------|
//! | A        | 100%          |                          |         |
//! | B        |               | 100%                     |         |
//! | C        | 95%           |                          | 5%      |
//! | D        | 50%           |                          | 50%     |
//!
//! Beyond the original YCSB, the paper adds configurable range
//! selectivities (0.001 / 0.01 / 0.1) and *attribute-value skew*: data
//! sets with monotonically increasing integer keys, assigned to servers
//! by uneven key ranges (80/12/5/3 in the evaluation) so that uniformly
//! distributed requests concentrate on one server under coarse-grained
//! partitioning. Request-side skew (Zipfian, YCSB's theta = 0.99) is
//! also supported.
//!
//! [`Dataset`] describes the loaded records; [`Workload`] the operation
//! mix; [`OpGen`] produces a deterministic per-client operation stream.

use simnet::rng::{DetRng, Zipf};

/// Index key type (matches `blink::Key`).
pub type Key = u64;
/// Index value type (matches `blink::Value`).
pub type Value = u64;

/// The loaded data: `num_keys` records with keys `0, gap, 2·gap, …` and
/// value `i` for the `i`-th record (the paper's monotonically increasing
/// integer keys/values). The gap leaves room for scattered inserts of
/// fresh keys between existing ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dataset {
    /// Number of loaded records.
    pub num_keys: u64,
    /// Key stride between consecutive records.
    pub gap: u64,
}

impl Dataset {
    /// Standard dataset: stride-8 keys.
    pub fn new(num_keys: u64) -> Self {
        assert!(num_keys > 0);
        Dataset { num_keys, gap: 8 }
    }

    /// The `i`-th loaded key.
    pub fn key(&self, i: u64) -> Key {
        debug_assert!(i < self.num_keys);
        i * self.gap
    }

    /// Exclusive upper bound of the loaded key space (partitioning
    /// domain).
    pub fn domain(&self) -> Key {
        self.num_keys * self.gap
    }

    /// Iterate the loaded `(key, value)` records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        (0..self.num_keys).map(|i| (self.key(i), i))
    }
}

/// How request keys are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RequestDist {
    /// Uniform over the loaded records (the paper's default: "spreads
    /// lookups uniformly at random over the complete key space").
    Uniform,
    /// YCSB scrambled-Zipfian with the given theta.
    Zipfian(f64),
}

/// Where inserted keys land.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPattern {
    /// Fresh keys scattered uniformly between existing keys (YCSB's
    /// default hashed-key insert order).
    Scattered,
    /// Fresh keys appended past the end of the key space (YCSB's ordered
    /// insert mode; creates a rightmost-leaf hotspot).
    Append,
    /// Fresh keys appended to one of `regions` growing clusters (e.g.
    /// order-number sequences of several warehouses): a handful of hot
    /// leaves, the moderate-contention regime of the paper's Fig. 12.
    Clustered {
        /// Number of independent append regions.
        regions: u64,
    },
}

/// An operation mix (one row of Table 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Workload {
    /// Fraction of point queries.
    pub point_frac: f64,
    /// Fraction of range queries.
    pub range_frac: f64,
    /// Fraction of inserts.
    pub insert_frac: f64,
    /// Range selectivity `s`: a range query covers `s · num_keys` records.
    pub selectivity: f64,
    /// Request key distribution.
    pub dist: RequestDist,
    /// Insert key placement.
    pub insert_pattern: InsertPattern,
}

impl Workload {
    /// Workload A: 100% point queries.
    pub fn a() -> Self {
        Workload {
            point_frac: 1.0,
            range_frac: 0.0,
            insert_frac: 0.0,
            selectivity: 0.0,
            dist: RequestDist::Uniform,
            insert_pattern: InsertPattern::Scattered,
        }
    }

    /// Workload B: 100% range queries with selectivity `sel`.
    pub fn b(sel: f64) -> Self {
        assert!(sel > 0.0 && sel < 1.0);
        Workload {
            point_frac: 0.0,
            range_frac: 1.0,
            insert_frac: 0.0,
            selectivity: sel,
            dist: RequestDist::Uniform,
            insert_pattern: InsertPattern::Scattered,
        }
    }

    /// Workload C: 95% point queries, 5% inserts.
    pub fn c() -> Self {
        Workload {
            point_frac: 0.95,
            range_frac: 0.0,
            insert_frac: 0.05,
            selectivity: 0.0,
            dist: RequestDist::Uniform,
            insert_pattern: InsertPattern::Scattered,
        }
    }

    /// Workload D: 50% point queries, 50% inserts.
    pub fn d() -> Self {
        Workload {
            point_frac: 0.5,
            range_frac: 0.0,
            insert_frac: 0.5,
            selectivity: 0.0,
            dist: RequestDist::Uniform,
            insert_pattern: InsertPattern::Scattered,
        }
    }

    /// Replace the request distribution.
    pub fn with_dist(mut self, dist: RequestDist) -> Self {
        self.dist = dist;
        self
    }

    /// Replace the insert pattern.
    pub fn with_insert_pattern(mut self, p: InsertPattern) -> Self {
        self.insert_pattern = p;
        self
    }

    /// Check the mix sums to 1.
    pub fn validate(&self) {
        let sum = self.point_frac + self.range_frac + self.insert_frac;
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}, not 1");
        if self.range_frac > 0.0 {
            assert!(self.selectivity > 0.0, "range workload needs a selectivity");
        }
    }
}

/// One benchmark operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Point query for a key.
    Point(Key),
    /// Range query over `[lo, hi]` (inclusive).
    Range(Key, Key),
    /// Insert of a fresh `(key, value)`.
    Insert(Key, Value),
}

/// Deterministic per-client operation stream.
///
/// Each of the `num_clients` closed-loop clients gets its own seeded
/// stream; appended keys are striped across clients so no two clients
/// ever insert the same key.
pub struct OpGen {
    workload: Workload,
    data: Dataset,
    rng: DetRng,
    zipf: Option<Zipf>,
    /// Range-query span in records.
    range_records: u64,
    /// Next append sequence number for this client.
    next_append: u64,
    client: u64,
    num_clients: u64,
    /// Counter making inserted values unique per client.
    inserted: u64,
}

impl OpGen {
    /// Create the stream for `client` of `num_clients`, seeded
    /// deterministically from `seed`.
    pub fn new(
        workload: Workload,
        data: Dataset,
        client: u64,
        num_clients: u64,
        seed: u64,
    ) -> Self {
        let zipf = match workload.dist {
            RequestDist::Uniform => None,
            RequestDist::Zipfian(theta) => Some(Zipf::new(data.num_keys, theta)),
        };
        Self::with_shared_zipf(workload, data, client, num_clients, seed, zipf)
    }

    /// As [`OpGen::new`] but with a pre-built Zipf table, so many clients
    /// can share one O(n) zeta computation. Pass `None` for uniform.
    pub fn with_shared_zipf(
        workload: Workload,
        data: Dataset,
        client: u64,
        num_clients: u64,
        seed: u64,
        zipf: Option<Zipf>,
    ) -> Self {
        workload.validate();
        assert!(client < num_clients);
        if matches!(workload.dist, RequestDist::Zipfian(_)) {
            assert!(zipf.is_some(), "zipfian workload needs a Zipf table");
        }
        let range_records = ((workload.selectivity * data.num_keys as f64) as u64).max(1);
        OpGen {
            workload,
            data,
            rng: DetRng::seed_from_u64(seed ^ client.wrapping_mul(0x9e3779b97f4a7c15)),
            zipf,
            range_records,
            next_append: 0,
            client,
            num_clients,
            inserted: 0,
        }
    }

    /// Draw a record index per the request distribution.
    fn record_index(&mut self) -> u64 {
        let OpGen {
            zipf, rng, data, ..
        } = self;
        match zipf {
            Some(z) => z.sample_scrambled(rng),
            None => rng.next_u64_below(data.num_keys),
        }
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        let roll = self.rng.next_f64();
        if roll < self.workload.point_frac {
            let idx = self.record_index();
            Op::Point(self.data.key(idx))
        } else if roll < self.workload.point_frac + self.workload.range_frac {
            // Clamp the start so the full span fits in the key space.
            let max_start = self.data.num_keys.saturating_sub(self.range_records).max(1);
            let start = self.record_index().min(max_start - 1);
            let lo = self.data.key(start);
            let hi = self
                .data
                .key((start + self.range_records - 1).min(self.data.num_keys - 1));
            Op::Range(lo, hi)
        } else {
            let key = match self.workload.insert_pattern {
                InsertPattern::Scattered => {
                    // A fresh key strictly between existing stride-gap keys
                    // (odd keys never collide with the loaded even strides).
                    self.rng.next_u64_below(self.data.domain()) | 1
                }
                InsertPattern::Append => {
                    let seq = self.next_append;
                    self.next_append += 1;
                    self.data.domain() + seq * self.num_clients + self.client
                }
                InsertPattern::Clustered { regions } => {
                    // Regions live in disjoint bands past the loaded key
                    // space; clients of one region interleave densely so
                    // every region has one hot tail leaf.
                    const BAND: u64 = 1 << 40;
                    let region = self.client % regions;
                    let seq = self.next_append;
                    self.next_append += 1;
                    self.data.domain() + (region + 1) * BAND + seq * self.num_clients + self.client
                }
            };
            self.inserted += 1;
            let value = self.client * (1 << 32) + self.inserted;
            Op::Insert(key, value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_keys() {
        let d = Dataset::new(100);
        assert_eq!(d.key(0), 0);
        assert_eq!(d.key(99), 99 * 8);
        assert_eq!(d.domain(), 800);
        let all: Vec<_> = d.iter().collect();
        assert_eq!(all.len(), 100);
        assert_eq!(all[5], (40, 5));
    }

    #[test]
    fn table3_mixes() {
        for (w, p, r, i) in [
            (Workload::a(), 1.0, 0.0, 0.0),
            (Workload::b(0.01), 0.0, 1.0, 0.0),
            (Workload::c(), 0.95, 0.0, 0.05),
            (Workload::d(), 0.5, 0.0, 0.5),
        ] {
            w.validate();
            assert_eq!((w.point_frac, w.range_frac, w.insert_frac), (p, r, i));
        }
    }

    #[test]
    fn workload_a_is_all_points_over_loaded_keys() {
        let d = Dataset::new(1000);
        let mut g = OpGen::new(Workload::a(), d, 0, 1, 42);
        for _ in 0..1000 {
            match g.next_op() {
                Op::Point(k) => {
                    assert_eq!(k % 8, 0);
                    assert!(k < d.domain());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn workload_b_ranges_match_selectivity() {
        let d = Dataset::new(10_000);
        let mut g = OpGen::new(Workload::b(0.01), d, 0, 1, 1);
        for _ in 0..200 {
            match g.next_op() {
                Op::Range(lo, hi) => {
                    assert!(lo <= hi);
                    let records = (hi - lo) / d.gap + 1;
                    assert_eq!(records, 100, "sel=0.01 of 10k = 100 records");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn workload_mix_fractions_hold() {
        let d = Dataset::new(1000);
        let mut g = OpGen::new(Workload::c(), d, 0, 1, 7);
        let (mut points, mut inserts) = (0u32, 0u32);
        for _ in 0..10_000 {
            match g.next_op() {
                Op::Point(_) => points += 1,
                Op::Insert(..) => inserts += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let frac = inserts as f64 / (points + inserts) as f64;
        assert!((frac - 0.05).abs() < 0.01, "insert fraction {frac}");
    }

    #[test]
    fn scattered_inserts_never_collide_with_loaded() {
        let d = Dataset::new(1000);
        let mut g = OpGen::new(Workload::d(), d, 0, 1, 3);
        for _ in 0..5000 {
            if let Op::Insert(k, _) = g.next_op() {
                assert_ne!(k % 8, 0, "insert key collides with loaded keys");
                assert!(k < d.domain() + 8);
            }
        }
    }

    #[test]
    fn append_inserts_striped_across_clients() {
        let d = Dataset::new(100);
        let w = Workload::d().with_insert_pattern(InsertPattern::Append);
        let mut keys = Vec::new();
        for c in 0..4u64 {
            let mut g = OpGen::new(w, d, c, 4, 9);
            for _ in 0..200 {
                if let Op::Insert(k, _) = g.next_op() {
                    assert!(k >= d.domain());
                    keys.push(k);
                }
            }
        }
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "append keys must be globally unique");
    }

    #[test]
    fn clustered_inserts_form_hot_regions() {
        let d = Dataset::new(100);
        let w = Workload::d().with_insert_pattern(InsertPattern::Clustered { regions: 4 });
        let mut per_region = std::collections::BTreeMap::new();
        let mut all_keys = Vec::new();
        for c in 0..8u64 {
            let mut g = OpGen::new(w, d, c, 8, 5);
            for _ in 0..100 {
                if let Op::Insert(k, _) = g.next_op() {
                    assert!(k >= d.domain(), "cluster keys live past the data");
                    let region = (k - d.domain()) >> 40;
                    *per_region.entry(region).or_insert(0u32) += 1;
                    all_keys.push(k);
                }
            }
        }
        assert_eq!(per_region.len(), 4, "exactly the requested regions");
        let n = all_keys.len();
        all_keys.sort_unstable();
        all_keys.dedup();
        assert_eq!(all_keys.len(), n, "clustered keys must be unique");
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let d = Dataset::new(1000);
        let ops = |client, seed| {
            let mut g = OpGen::new(Workload::a(), d, client, 4, seed);
            (0..50).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(ops(0, 42), ops(0, 42));
        assert_ne!(ops(0, 42), ops(1, 42));
        assert_ne!(ops(0, 42), ops(0, 43));
    }

    #[test]
    fn zipfian_requests_concentrate() {
        let d = Dataset::new(10_000);
        let w = Workload::a().with_dist(RequestDist::Zipfian(0.99));
        let mut g = OpGen::new(w, d, 0, 1, 5);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            if let Op::Point(k) = g.next_op() {
                *counts.entry(k).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max as f64 / 20_000.0 > 0.03,
            "zipfian hot key must dominate (max={max})"
        );
    }

    #[test]
    #[should_panic(expected = "fractions sum")]
    fn invalid_mix_rejected() {
        Workload {
            point_frac: 0.5,
            range_frac: 0.0,
            insert_frac: 0.0,
            selectivity: 0.0,
            dist: RequestDist::Uniform,
            insert_pattern: InsertPattern::Scattered,
        }
        .validate();
    }
}
