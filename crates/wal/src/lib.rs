#![warn(missing_docs)]

//! # wal — per-memory-server durability
//!
//! A memory server that loses its RAM on a crash needs three things to
//! come back: a **write-ahead log** of every acknowledged state mutation,
//! a **checkpoint** bounding how much log a restart must replay, and a
//! **recovery** path that rebuilds pool + local-tree state from the two.
//! This crate provides all three over a simulated NVMe device
//! ([`NvmeDevice`]) whose bandwidth/latency/queue model is a sibling of
//! the NIC model in `rdma-sim`.
//!
//! ## Write path (group commit)
//!
//! A verb's effect is applied to RAM, then its record is appended to the
//! in-memory pending buffer ([`ServerWal::append`]) and the verb awaits
//! [`ServerWal::wait_durable`] before acknowledging. A single *pump* task
//! per server drains the buffer: each flush coalesces every pending
//! record into one device write (group commit), so concurrent verbs share
//! one fsync. The pump is spawned on demand by the first append and exits
//! when the buffer drains — the simulation quiesces with no parked tasks.
//!
//! ## Checkpoints
//!
//! When the durable log since the last checkpoint exceeds the configured
//! threshold, the pump captures a consistent image of the server state
//! (via the registered [`CheckpointSource`]), streams it to the device,
//! and atomically switches to it (shadow-paged: a crash mid-write keeps
//! the old checkpoint), truncating the covered log prefix. The capture is
//! *fuzzy* with respect to the log: records still in the pending buffer
//! are covered by the image before they are durable, which is safe
//! because records carry post-state payloads and replay filters by LSN.
//!
//! ## Crash + recovery
//!
//! [`ServerWal::crash`] models RAM loss: the pending buffer vanishes,
//! waiting verbs fail, and a flush in flight persists only the byte
//! prefix proportional to the device time it had — a **torn tail** that
//! recovery's CRC scan discards ([`record::decode_log`]). A restart
//! replays checkpoint + surviving log through [`ServerWal::recover`]; the
//! returned plan carries the modelled device-read and CPU costs so the
//! caller can charge recovery time before marking the server healthy.

pub mod device;
pub mod record;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use simnet::{Sim, SimDur, SimTime};

pub use device::NvmeDevice;
pub use record::{decode_log, DecodedLog, WalRecord};

/// Durability knobs for one server's WAL (mirrors the `wal_*` fields of
/// `rdma_sim::ClusterSpec`).
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Log-device write bandwidth, bytes/second.
    pub write_bandwidth: f64,
    /// Log-device read bandwidth (recovery replay), bytes/second.
    pub read_bandwidth: f64,
    /// Fixed per-flush durable-write latency (the cost group commit
    /// amortises).
    pub fsync_latency: SimDur,
    /// Coalesce all pending records into one device write per flush.
    /// `false` flushes one record per device op (the comparison baseline
    /// for the group-commit telemetry cross-check).
    pub group_commit: bool,
    /// Take a checkpoint once the durable log exceeds this many bytes
    /// (0 disables runtime checkpoints; the setup-time base image is
    /// still installed).
    pub checkpoint_every_bytes: u64,
    /// CPU cost to decode + apply one record during replay.
    pub replay_cpu_per_record: SimDur,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            write_bandwidth: 2.0e9,
            read_bandwidth: 3.5e9,
            fsync_latency: SimDur::from_micros(10),
            group_commit: true,
            checkpoint_every_bytes: 16 << 20,
            replay_cpu_per_record: SimDur::from_nanos(150),
        }
    }
}

/// A consistent snapshot of one server's recoverable state, captured by
/// the host layer at checkpoint time.
#[derive(Clone, Debug, Default)]
pub struct CheckpointPayload {
    /// The memory pool's bytes.
    pub pool_image: Vec<u8>,
    /// The pool's bump-allocator watermark.
    pub allocated: u64,
    /// Live `(key, value)` entries of the server's local tree (empty for
    /// servers that host no tree, e.g. under the fine-grained design).
    pub tree_entries: Vec<(u64, u64)>,
}

impl CheckpointPayload {
    /// Bytes this payload occupies on the device (image + entries + a
    /// fixed header).
    pub fn device_bytes(&self) -> u64 {
        self.pool_image.len() as u64 + self.tree_entries.len() as u64 * 16 + 16
    }
}

/// Capturer of [`CheckpointPayload`]s — implemented by the cluster layer,
/// which owns the pool and the per-design tree registry.
pub trait CheckpointSource {
    /// Capture the server's current recoverable state. Returns `None` if
    /// the server no longer exists (e.g. the cluster was dropped).
    fn capture(&self) -> Option<CheckpointPayload>;
}

/// The durable checkpoint (shadow-paged: replaced atomically at commit).
struct Checkpoint {
    payload: CheckpointPayload,
    /// Records with `lsn <= upto_lsn` are covered by the image and must
    /// not be replayed over it.
    upto_lsn: u64,
}

/// A log-flush batch occupying the device right now.
struct InFlight {
    bytes: Vec<u8>,
    start: SimTime,
    end: SimTime,
    last_lsn: u64,
    records: u64,
}

#[derive(Default)]
struct WalStatsInner {
    appends: u64,
    records_flushed: u64,
    flushed_bytes: u64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    torn_bytes_discarded: u64,
    recoveries: u64,
    records_replayed: u64,
}

/// Counters for one server's durability subsystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalStats {
    /// Records appended (one per acknowledged state mutation).
    pub appends: u64,
    /// Records made durable by log flushes.
    pub records_flushed: u64,
    /// Durable log-device write ops (group commit makes this much
    /// smaller than `records_flushed`; per-record flushing makes them
    /// equal).
    pub device_flushes: u64,
    /// Log bytes flushed.
    pub flushed_bytes: u64,
    /// Runtime checkpoints committed (the setup base image is free).
    pub checkpoints: u64,
    /// Checkpoint bytes streamed to the device.
    pub checkpoint_bytes: u64,
    /// Torn-tail bytes discarded by recoveries.
    pub torn_bytes_discarded: u64,
    /// Completed recoveries.
    pub recoveries: u64,
    /// Records replayed by recoveries.
    pub records_replayed: u64,
    /// Virtual time the log device has been occupied, nanoseconds.
    pub device_busy_nanos: u64,
}

struct WalInner {
    /// Encoded records awaiting a flush (RAM — lost on crash).
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Next LSN to assign (LSN 0 is "nothing").
    next_lsn: u64,
    /// Highest LSN whose record is durable.
    durable_lsn: u64,
    /// The durable log image (device contents after the checkpoint).
    log: Vec<u8>,
    /// Crash epoch: bumped by [`ServerWal::crash`]; stale pump tasks and
    /// durability waiters compare against it.
    epoch: u64,
    pump_running: bool,
    in_flight: Option<InFlight>,
    /// FIFO of `(id, lsn, waker)` durability waiters.
    waiters: Vec<(u64, u64, Waker)>,
    next_waiter: u64,
    checkpoint: Option<Checkpoint>,
    source: Option<Rc<dyn CheckpointSource>>,
    stats: WalStatsInner,
}

/// One memory server's write-ahead log + checkpoint + recovery state.
pub struct ServerWal {
    sim: Sim,
    cfg: WalConfig,
    dev: NvmeDevice,
    inner: RefCell<WalInner>,
}

/// Outcome of awaiting durability for an appended record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitOutcome {
    /// The record (and everything before it) is on the device.
    Durable,
    /// The server crashed before the record was flushed — the caller's
    /// mutation may or may not survive recovery and must not be
    /// acknowledged.
    Crashed,
}

/// Everything a restart needs to rebuild the server, plus the modelled
/// cost of doing so.
pub struct RecoveryPlan {
    /// Checkpoint pool image to restore (empty if no checkpoint was ever
    /// installed — the server rebuilds from the log alone).
    pub pool_image: Vec<u8>,
    /// Checkpoint allocator watermark.
    pub allocated: u64,
    /// Checkpoint tree entries.
    pub tree_entries: Vec<(u64, u64)>,
    /// Surviving log records *after* the checkpoint, in LSN order.
    pub records: Vec<WalRecord>,
    /// Checkpoint + log bytes the recovery reads from the device.
    pub replay_bytes: u64,
    /// Torn-tail bytes discarded by this recovery.
    pub torn_bytes: u64,
    /// Device occupancy of the sequential replay read.
    pub read_duration: SimDur,
    /// CPU time to decode + apply the records.
    pub cpu_duration: SimDur,
}

impl ServerWal {
    /// New WAL over an idle device.
    pub fn new(sim: &Sim, cfg: WalConfig) -> Rc<Self> {
        let dev = NvmeDevice::new(cfg.write_bandwidth, cfg.read_bandwidth, cfg.fsync_latency);
        Rc::new(ServerWal {
            sim: sim.clone(),
            cfg,
            dev,
            inner: RefCell::new(WalInner {
                pending: VecDeque::new(),
                next_lsn: 1,
                durable_lsn: 0,
                log: Vec::new(),
                epoch: 0,
                pump_running: false,
                in_flight: None,
                waiters: Vec::new(),
                next_waiter: 0,
                checkpoint: None,
                source: None,
                stats: WalStatsInner::default(),
            }),
        })
    }

    /// Register the state capturer used by checkpoints. Installed by the
    /// cluster right after construction.
    pub fn set_source(&self, source: Rc<dyn CheckpointSource>) {
        self.inner.borrow_mut().source = Some(source);
    }

    /// Install the setup-time base image: capture the server state *now*
    /// and make it the checkpoint, at no device cost (it models the
    /// initial-load image the server was provisioned from). Called when a
    /// design finishes building; also fired lazily by the first append so
    /// raw verb traffic is covered too. No-op if a checkpoint exists.
    pub fn seal_base(&self) {
        let source = {
            let inner = self.inner.borrow();
            if inner.checkpoint.is_some() {
                return;
            }
            match &inner.source {
                Some(s) => s.clone(),
                None => return,
            }
        };
        // Capture outside the borrow: the source reads cluster state.
        let Some(payload) = source.capture() else {
            return;
        };
        let mut inner = self.inner.borrow_mut();
        if inner.checkpoint.is_some() {
            return;
        }
        let upto_lsn = inner.next_lsn - 1;
        inner.log.clear();
        inner.checkpoint = Some(Checkpoint { payload, upto_lsn });
    }

    /// Append one record; returns its LSN (to pass to
    /// [`ServerWal::wait_durable`]). Spawns the flush pump if idle.
    pub fn append(self: &Rc<Self>, rec: WalRecord) -> u64 {
        self.seal_base();
        let (lsn, spawn_epoch) = {
            let mut inner = self.inner.borrow_mut();
            let lsn = inner.next_lsn;
            inner.next_lsn += 1;
            let encoded = rec.encode(lsn);
            inner.pending.push_back((lsn, encoded));
            inner.stats.appends += 1;
            let spawn = !inner.pump_running;
            if spawn {
                inner.pump_running = true;
            }
            (lsn, spawn.then_some(inner.epoch))
        };
        if let Some(epoch) = spawn_epoch {
            let wal = self.clone();
            self.sim.spawn(async move { wal.pump(epoch).await });
        }
        lsn
    }

    /// Highest LSN assigned so far (0 if none).
    pub fn appended_lsn(&self) -> u64 {
        self.inner.borrow().next_lsn - 1
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.borrow().durable_lsn
    }

    /// Current crash epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch
    }

    /// Await durability of `lsn` (or the server's crash, whichever comes
    /// first). Resolves immediately if already durable.
    pub fn wait_durable(&self, lsn: u64) -> DurableWait<'_> {
        let epoch = self.inner.borrow().epoch;
        DurableWait {
            wal: self,
            lsn,
            epoch,
            id: None,
        }
    }

    /// The flush pump: drains the pending buffer one device write at a
    /// time, then exits. Spawned on demand by [`ServerWal::append`]; a
    /// crash (epoch bump) makes a stale pump return without touching
    /// state.
    async fn pump(self: Rc<Self>, epoch: u64) {
        loop {
            let batch = {
                let mut inner = self.inner.borrow_mut();
                if inner.epoch != epoch {
                    return;
                }
                if inner.pending.is_empty() {
                    inner.pump_running = false;
                    return;
                }
                let take = if self.cfg.group_commit {
                    inner.pending.len()
                } else {
                    1
                };
                let mut bytes = Vec::new();
                let mut last_lsn = 0;
                for _ in 0..take {
                    let (lsn, enc) = inner.pending.pop_front().expect("batch within pending");
                    bytes.extend_from_slice(&enc);
                    last_lsn = lsn;
                }
                let now = self.sim.now();
                let (start, end) = self.dev.reserve_write(now, bytes.len() as u64);
                inner.in_flight = Some(InFlight {
                    bytes,
                    start,
                    end,
                    last_lsn,
                    records: take as u64,
                });
                end
            };
            self.sim.sleep_until(batch).await;
            let wakers = {
                let mut inner = self.inner.borrow_mut();
                if inner.epoch != epoch {
                    return;
                }
                let infl = inner.in_flight.take().expect("in-flight batch present");
                inner.log.extend_from_slice(&infl.bytes);
                inner.durable_lsn = infl.last_lsn;
                inner.stats.records_flushed += infl.records;
                inner.stats.flushed_bytes += infl.bytes.len() as u64;
                take_ready_waiters(&mut inner)
            };
            for w in wakers {
                w.wake();
            }
            self.maybe_checkpoint(epoch).await;
        }
    }

    /// Take a checkpoint if the durable log has outgrown the threshold.
    /// Runs inline in the pump (the device is a single FIFO anyway).
    async fn maybe_checkpoint(&self, epoch: u64) {
        let source = {
            let inner = self.inner.borrow();
            if self.cfg.checkpoint_every_bytes == 0
                || (inner.log.len() as u64) < self.cfg.checkpoint_every_bytes
            {
                return;
            }
            match &inner.source {
                Some(s) => s.clone(),
                None => return,
            }
        };
        let Some(payload) = source.capture() else {
            return;
        };
        // The capture is consistent at this instant; everything appended
        // so far (durable or still pending) is reflected in it.
        let (upto_lsn, covered_bytes, end) = {
            let mut inner = self.inner.borrow_mut();
            if inner.epoch != epoch {
                return;
            }
            let upto = inner.next_lsn - 1;
            let covered = inner.log.len();
            let now = self.sim.now();
            let (_, end) = self.dev.reserve_write(now, payload.device_bytes());
            inner.stats.checkpoint_bytes += payload.device_bytes();
            (upto, covered, end)
        };
        self.sim.sleep_until(end).await;
        let mut inner = self.inner.borrow_mut();
        if inner.epoch != epoch {
            // Crashed mid-write: the shadow checkpoint is discarded, the
            // old one (and the full log) remain authoritative.
            return;
        }
        inner.log.drain(..covered_bytes);
        inner.checkpoint = Some(Checkpoint { payload, upto_lsn });
        inner.stats.checkpoints += 1;
    }

    /// The server's RAM is gone: drop the pending buffer, fail waiting
    /// verbs, and commit the deterministic torn prefix of any flush that
    /// was mid-device-write at `now` (the bytes the device had streamed
    /// by then; recovery's CRC scan discards the partial record at the
    /// cut).
    pub fn crash(&self, now: SimTime) {
        let wakers: Vec<Waker> = {
            let mut inner = self.inner.borrow_mut();
            inner.epoch += 1;
            inner.pump_running = false;
            inner.pending.clear();
            if let Some(infl) = inner.in_flight.take() {
                let total = (infl.end - infl.start).as_nanos();
                let elapsed = now.since(infl.start).as_nanos().min(total);
                let cut = if total == 0 {
                    infl.bytes.len()
                } else {
                    (infl.bytes.len() as u128 * elapsed as u128 / total as u128) as usize
                };
                let prefix = &infl.bytes[..cut];
                inner.log.extend_from_slice(prefix);
            }
            inner.waiters.drain(..).map(|(_, _, w)| w).collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Decode the durable state for a restart: checkpoint + the
    /// CRC-valid log prefix (the torn tail is truncated for good).
    /// Returns the plan with modelled read/CPU costs; the caller charges
    /// them, applies the plan, then marks the server healthy.
    pub fn recover(&self) -> RecoveryPlan {
        let mut inner = self.inner.borrow_mut();
        let decoded = decode_log(&inner.log);
        let valid = decoded.valid_bytes;
        let torn = decoded.torn_bytes as u64;
        inner.log.truncate(valid);
        let (pool_image, allocated, tree_entries, upto_lsn) = match &inner.checkpoint {
            Some(c) => (
                c.payload.pool_image.clone(),
                c.payload.allocated,
                c.payload.tree_entries.clone(),
                c.upto_lsn,
            ),
            None => (Vec::new(), 0, Vec::new(), 0),
        };
        let mut durable = upto_lsn;
        let records: Vec<WalRecord> = decoded
            .records
            .into_iter()
            .filter(|(lsn, _)| *lsn > upto_lsn)
            .map(|(lsn, r)| {
                durable = durable.max(lsn);
                r
            })
            .collect();
        inner.durable_lsn = durable;
        let ckpt_bytes = match &inner.checkpoint {
            Some(c) => c.payload.device_bytes(),
            None => 0,
        };
        let replay_bytes = ckpt_bytes + valid as u64;
        inner.stats.torn_bytes_discarded += torn;
        inner.stats.recoveries += 1;
        inner.stats.records_replayed += records.len() as u64;
        RecoveryPlan {
            pool_image,
            allocated,
            tree_entries,
            read_duration: self.dev.read_duration(replay_bytes),
            cpu_duration: self.cfg.replay_cpu_per_record * records.len() as u64,
            records,
            replay_bytes,
            torn_bytes: torn,
        }
    }

    /// Occupy the device for the recovery's sequential read.
    pub async fn replay_read(&self, bytes: u64) {
        self.dev.read(&self.sim, bytes).await;
    }

    /// Durable log bytes currently on the device (since the checkpoint).
    pub fn log_bytes(&self) -> u64 {
        self.inner.borrow().log.len() as u64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.borrow();
        WalStats {
            appends: inner.stats.appends,
            records_flushed: inner.stats.records_flushed,
            device_flushes: self.dev.flushes(),
            flushed_bytes: inner.stats.flushed_bytes,
            checkpoints: inner.stats.checkpoints,
            checkpoint_bytes: inner.stats.checkpoint_bytes,
            torn_bytes_discarded: inner.stats.torn_bytes_discarded,
            recoveries: inner.stats.recoveries,
            records_replayed: inner.stats.records_replayed,
            device_busy_nanos: self.dev.busy_time().as_nanos(),
        }
    }
}

/// Pop every waiter whose LSN is durable; wakers are returned so the
/// caller can wake outside the borrow.
fn take_ready_waiters(inner: &mut WalInner) -> Vec<Waker> {
    let durable = inner.durable_lsn;
    let mut ready = Vec::new();
    inner.waiters.retain(|(_, lsn, w)| {
        if *lsn <= durable {
            ready.push(w.clone());
            false
        } else {
            true
        }
    });
    ready
}

/// Future returned by [`ServerWal::wait_durable`].
pub struct DurableWait<'a> {
    wal: &'a ServerWal,
    lsn: u64,
    epoch: u64,
    id: Option<u64>,
}

impl Future for DurableWait<'_> {
    type Output = WaitOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<WaitOutcome> {
        let this = self.get_mut();
        let mut inner = this.wal.inner.borrow_mut();
        if inner.epoch != this.epoch {
            this.id = None;
            return Poll::Ready(WaitOutcome::Crashed);
        }
        if inner.durable_lsn >= this.lsn {
            if let Some(id) = this.id.take() {
                inner.waiters.retain(|(i, _, _)| *i != id);
            }
            return Poll::Ready(WaitOutcome::Durable);
        }
        match this.id {
            Some(id) => {
                if let Some(entry) = inner.waiters.iter_mut().find(|(i, _, _)| *i == id) {
                    entry.2 = cx.waker().clone();
                }
            }
            None => {
                let id = inner.next_waiter;
                inner.next_waiter += 1;
                this.id = Some(id);
                inner.waiters.push((id, this.lsn, cx.waker().clone()));
            }
        }
        Poll::Pending
    }
}

impl Drop for DurableWait<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.wal
                .inner
                .borrow_mut()
                .waiters
                .retain(|(i, _, _)| *i != id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn cfg() -> WalConfig {
        WalConfig {
            write_bandwidth: 1e9,
            read_bandwidth: 2e9,
            fsync_latency: SimDur::from_micros(10),
            group_commit: true,
            checkpoint_every_bytes: 0,
            replay_cpu_per_record: SimDur::from_nanos(100),
        }
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::TreeUpsert { key: i, value: i }
    }

    #[test]
    fn append_then_wait_becomes_durable_after_flush() {
        let sim = Sim::new();
        let wal = ServerWal::new(&sim, cfg());
        let done = Rc::new(Cell::new(0u64));
        {
            let wal = wal.clone();
            let sim_c = sim.clone();
            let done = done.clone();
            sim.spawn(async move {
                let lsn = wal.append(rec(1));
                assert_eq!(wal.wait_durable(lsn).await, WaitOutcome::Durable);
                done.set(sim_c.now().as_nanos());
            });
        }
        sim.run();
        // One flush: fsync (10us) + bytes at 1 GB/s.
        let bytes = rec(1).encoded_len() as u64;
        assert_eq!(done.get(), 10_000 + bytes);
        assert_eq!(wal.stats().device_flushes, 1);
        assert_eq!(wal.stats().records_flushed, 1);
        assert_eq!(sim.live_tasks(), 0, "pump must have exited");
    }

    #[test]
    fn group_commit_coalesces_device_ops() {
        let flushes_for = |group: bool| {
            let sim = Sim::new();
            let wal = ServerWal::new(
                &sim,
                WalConfig {
                    group_commit: group,
                    ..cfg()
                },
            );
            for i in 0..16u64 {
                let wal = wal.clone();
                sim.spawn(async move {
                    let lsn = wal.append(rec(i));
                    assert_eq!(wal.wait_durable(lsn).await, WaitOutcome::Durable);
                });
            }
            sim.run();
            let st = wal.stats();
            assert_eq!(st.records_flushed, 16);
            st.device_flushes
        };
        let grouped = flushes_for(true);
        let per_record = flushes_for(false);
        assert_eq!(per_record, 16, "per-record mode pays one op per record");
        assert!(
            grouped <= 2,
            "group commit must coalesce 16 same-instant appends into at \
             most the first flush plus one batch ({grouped} ops)"
        );
    }

    #[test]
    fn already_durable_wait_resolves_without_suspending() {
        let sim = Sim::new();
        let wal = ServerWal::new(&sim, cfg());
        {
            let wal = wal.clone();
            sim.spawn(async move {
                let lsn = wal.append(rec(7));
                wal.wait_durable(lsn).await;
                // Second wait on the same LSN must be instant.
                assert_eq!(wal.wait_durable(lsn).await, WaitOutcome::Durable);
            });
        }
        sim.run();
    }

    #[test]
    fn crash_fails_pending_waiters_and_keeps_torn_prefix() {
        let sim = Sim::new();
        let wal = ServerWal::new(&sim, cfg());
        let outcome = Rc::new(Cell::new(None));
        {
            let wal = wal.clone();
            let outcome = outcome.clone();
            sim.spawn(async move {
                let lsn = wal.append(rec(1));
                outcome.set(Some(wal.wait_durable(lsn).await));
            });
        }
        {
            // Crash 5us in: the 10us fsync hasn't finished, so less than
            // half the batch is on the device — the single record is torn.
            let wal = wal.clone();
            let sim_c = sim.clone();
            sim.spawn(async move {
                sim_c.sleep(SimDur::from_micros(5)).await;
                wal.crash(sim_c.now());
            });
        }
        sim.run();
        assert_eq!(outcome.get(), Some(WaitOutcome::Crashed));
        let plan = wal.recover();
        assert!(plan.records.is_empty(), "torn record must not replay");
        assert!(plan.torn_bytes > 0, "the partial prefix is discarded");
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn crash_after_flush_preserves_durable_records() {
        let sim = Sim::new();
        let wal = ServerWal::new(&sim, cfg());
        {
            let wal = wal.clone();
            let sim_c = sim.clone();
            sim.spawn(async move {
                let lsn = wal.append(rec(1));
                assert_eq!(wal.wait_durable(lsn).await, WaitOutcome::Durable);
                wal.crash(sim_c.now());
            });
        }
        sim.run();
        let plan = wal.recover();
        assert_eq!(plan.records, vec![rec(1)]);
        assert_eq!(plan.torn_bytes, 0);
        assert!(plan.read_duration > SimDur::ZERO);
    }

    struct FixedSource(CheckpointPayload);
    impl CheckpointSource for FixedSource {
        fn capture(&self) -> Option<CheckpointPayload> {
            Some(self.0.clone())
        }
    }

    #[test]
    fn checkpoint_truncates_log_and_bounds_replay() {
        let sim = Sim::new();
        let wal = ServerWal::new(
            &sim,
            WalConfig {
                checkpoint_every_bytes: 256,
                ..cfg()
            },
        );
        wal.set_source(Rc::new(FixedSource(CheckpointPayload {
            pool_image: vec![0u8; 64],
            allocated: 64,
            tree_entries: vec![(1, 1)],
        })));
        {
            let wal = wal.clone();
            let sim_c = sim.clone();
            sim.spawn(async move {
                for i in 0..64u64 {
                    let lsn = wal.append(rec(i));
                    wal.wait_durable(lsn).await;
                    sim_c.sleep(SimDur::from_micros(2)).await;
                }
            });
        }
        sim.run();
        let st = wal.stats();
        assert!(st.checkpoints >= 1, "threshold must have fired");
        assert!(
            wal.log_bytes() < 64 * rec(0).encoded_len() as u64,
            "checkpoint must truncate the covered log prefix"
        );
        // A restart replays only the records after the last checkpoint.
        let plan = wal.recover();
        assert!(
            (plan.records.len() as u64) < 64,
            "replay is bounded by the checkpoint ({} records)",
            plan.records.len()
        );
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn seal_base_covers_prior_state_without_device_cost() {
        let sim = Sim::new();
        let wal = ServerWal::new(&sim, cfg());
        wal.set_source(Rc::new(FixedSource(CheckpointPayload {
            pool_image: vec![9u8; 128],
            allocated: 128,
            tree_entries: vec![(5, 50)],
        })));
        wal.seal_base();
        assert_eq!(wal.stats().device_flushes, 0);
        let plan = wal.recover();
        assert_eq!(plan.pool_image, vec![9u8; 128]);
        assert_eq!(plan.allocated, 128);
        assert_eq!(plan.tree_entries, vec![(5, 50)]);
    }

    #[test]
    fn waits_resolve_in_append_order() {
        let sim = Sim::new();
        let wal = ServerWal::new(&sim, cfg());
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u64 {
            let wal = wal.clone();
            let order = order.clone();
            sim.spawn(async move {
                let lsn = wal.append(rec(i));
                wal.wait_durable(lsn).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }
}
