//! WAL record wire format.
//!
//! Every state mutation a memory server acknowledges is first encoded as
//! one record and appended to the server's log. Records carry *post-state*
//! payloads (the bytes a region holds after the write, the allocator
//! watermark after an alloc, the value a key maps to after an upsert), so
//! replay is idempotent: re-applying a record whose effect the checkpoint
//! image already contains is a no-op. That lets a fuzzy checkpoint commit
//! while some of the records it covers are still waiting in the group-
//! commit buffer — replay simply skips/overwrites by LSN.
//!
//! On-device layout of one record (all integers little-endian):
//!
//! ```text
//! magic:u32 | kind:u8 | lsn:u64 | payload_len:u32 | payload | crc:u64
//! ```
//!
//! The CRC (FNV-1a over everything before it) is what makes torn tails
//! detectable: a crash mid-flush persists a byte-accurate prefix of the
//! in-flight batch, and recovery stops scanning at the first record whose
//! bytes are incomplete or whose CRC mismatches — the torn tail is
//! discarded, never replayed.

/// First four bytes of every record.
pub const RECORD_MAGIC: u32 = 0x5741_4C31; // "WAL1"

/// Fixed bytes before the payload: magic + kind + lsn + payload_len.
pub const HEADER_BYTES: usize = 4 + 1 + 8 + 4;

/// Trailing CRC bytes.
pub const CRC_BYTES: usize = 8;

/// One logged state mutation. Payloads are post-state (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Bytes written to the memory pool at `offset` (covers WRITE verbs
    /// and the 8-byte post-images of successful CAS / FETCH_AND_ADD).
    PoolWrite {
        /// Pool offset of the first byte.
        offset: u64,
        /// The bytes the region holds after the write.
        data: Vec<u8>,
    },
    /// An 8-byte word written to the memory pool at `offset` — the
    /// post-image of a successful CAS / FETCH_AND_ADD, carried inline so
    /// the atomic hot path never heap-allocates a payload vector. Encodes
    /// byte-identically to a [`WalRecord::PoolWrite`] of the word's LE
    /// bytes (same kind byte, same payload layout); decode always yields
    /// `PoolWrite`, so recovery is unchanged.
    PoolWriteWord {
        /// Pool offset of the first byte.
        offset: u64,
        /// The word the region holds after the atomic.
        word: u64,
    },
    /// Allocator watermark after an ALLOC verb. Replay takes the max with
    /// the current watermark, so re-application never double-allocates.
    PoolAllocTo {
        /// Bump-allocator `next` value after the alloc.
        next: u64,
    },
    /// A server-local tree now maps `key` to `value` by *in-place update*
    /// of the first live entry (the hybrid design's `update_value` after
    /// a leaf split repoints a high key). Replay updates if the entry
    /// exists and inserts otherwise.
    TreeUpsert {
        /// Tree key.
        key: u64,
        /// Tree value after the operation.
        value: u64,
    },
    /// A fresh entry `(key, value)` was inserted into a server-local
    /// tree. Distinct from [`WalRecord::TreeUpsert`] because B-link trees
    /// admit duplicate keys: replay must re-run the insert verbatim to
    /// preserve entry multiplicity, not collapse onto an existing entry.
    TreeInsert {
        /// Tree key.
        key: u64,
        /// Inserted value.
        value: u64,
    },
    /// `key` was deleted from a server-local tree. Replaying a delete of
    /// an absent key is a no-op.
    TreeDelete {
        /// Tree key.
        key: u64,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::PoolWrite { .. } | WalRecord::PoolWriteWord { .. } => 1,
            WalRecord::PoolAllocTo { .. } => 2,
            WalRecord::TreeUpsert { .. } => 3,
            WalRecord::TreeDelete { .. } => 4,
            WalRecord::TreeInsert { .. } => 5,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            WalRecord::PoolWrite { offset, data } => {
                let mut p = Vec::with_capacity(8 + data.len());
                p.extend_from_slice(&offset.to_le_bytes());
                p.extend_from_slice(data);
                p
            }
            WalRecord::PoolWriteWord { offset, word } => {
                let mut p = Vec::with_capacity(16);
                p.extend_from_slice(&offset.to_le_bytes());
                p.extend_from_slice(&word.to_le_bytes());
                p
            }
            WalRecord::PoolAllocTo { next } => next.to_le_bytes().to_vec(),
            WalRecord::TreeUpsert { key, value } | WalRecord::TreeInsert { key, value } => {
                let mut p = Vec::with_capacity(16);
                p.extend_from_slice(&key.to_le_bytes());
                p.extend_from_slice(&value.to_le_bytes());
                p
            }
            WalRecord::TreeDelete { key } => key.to_le_bytes().to_vec(),
        }
    }

    /// Encoded size of this record on the device.
    pub fn encoded_len(&self) -> usize {
        let payload = match self {
            WalRecord::PoolWrite { data, .. } => 8 + data.len(),
            WalRecord::PoolWriteWord { .. } => 16,
            WalRecord::PoolAllocTo { .. } => 8,
            WalRecord::TreeUpsert { .. } | WalRecord::TreeInsert { .. } => 16,
            WalRecord::TreeDelete { .. } => 8,
        };
        HEADER_BYTES + payload + CRC_BYTES
    }

    /// Serialize with the given LSN.
    pub fn encode(&self, lsn: u64) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + CRC_BYTES);
        out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        out.push(self.kind());
        out.extend_from_slice(&lsn.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// FNV-1a over a byte slice — the workspace's house digest (same algorithm
/// as `mc`'s history digests), dependency-free and deterministic.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Outcome of decoding one record at a log position.
enum DecodeOne {
    /// A complete, CRC-valid record of `len` encoded bytes.
    Ok(WalRecord, u64, usize),
    /// The bytes at this position are not a complete valid record — the
    /// scan has hit the (possibly torn) end of the log.
    End,
}

fn decode_one(buf: &[u8]) -> DecodeOne {
    if buf.len() < HEADER_BYTES + CRC_BYTES {
        return DecodeOne::End;
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != RECORD_MAGIC {
        return DecodeOne::End;
    }
    let kind = buf[4];
    let lsn = u64::from_le_bytes(buf[5..13].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(buf[13..17].try_into().expect("4 bytes")) as usize;
    let total = HEADER_BYTES + payload_len + CRC_BYTES;
    if buf.len() < total {
        return DecodeOne::End;
    }
    let body = &buf[..HEADER_BYTES + payload_len];
    let crc = u64::from_le_bytes(
        buf[HEADER_BYTES + payload_len..total]
            .try_into()
            .expect("8 bytes"),
    );
    if fnv1a(body) != crc {
        return DecodeOne::End;
    }
    let payload = &buf[HEADER_BYTES..HEADER_BYTES + payload_len];
    let rec = match kind {
        1 if payload_len >= 8 => WalRecord::PoolWrite {
            offset: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
            data: payload[8..].to_vec(),
        },
        2 if payload_len == 8 => WalRecord::PoolAllocTo {
            next: u64::from_le_bytes(payload.try_into().expect("8 bytes")),
        },
        3 if payload_len == 16 => WalRecord::TreeUpsert {
            key: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
            value: u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
        },
        4 if payload_len == 8 => WalRecord::TreeDelete {
            key: u64::from_le_bytes(payload.try_into().expect("8 bytes")),
        },
        5 if payload_len == 16 => WalRecord::TreeInsert {
            key: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
            value: u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
        },
        // Unknown kind or malformed payload length with a somehow-valid
        // CRC: treat as end of usable log rather than guessing.
        _ => return DecodeOne::End,
    };
    DecodeOne::Ok(rec, lsn, total)
}

/// A fully decoded log: the valid record prefix and how much of the tail
/// was discarded as torn/corrupt.
pub struct DecodedLog {
    /// Records in log order, each with its LSN.
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes of valid log (scan position where decoding stopped).
    pub valid_bytes: usize,
    /// Bytes after `valid_bytes` that were discarded.
    pub torn_bytes: usize,
}

/// Scan a log image from the front, stopping at the first incomplete or
/// CRC-invalid record. Everything after the stop point is torn tail.
pub fn decode_log(buf: &[u8]) -> DecodedLog {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        match decode_one(&buf[pos..]) {
            DecodeOne::Ok(rec, lsn, len) => {
                records.push((lsn, rec));
                pos += len;
            }
            DecodeOne::End => break,
        }
    }
    DecodedLog {
        records,
        valid_bytes: pos,
        torn_bytes: buf.len() - pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::PoolWrite {
                offset: 4096,
                data: vec![7u8; 48],
            },
            WalRecord::PoolWrite {
                offset: 0,
                data: vec![],
            },
            WalRecord::PoolAllocTo { next: 1 << 20 },
            WalRecord::TreeUpsert {
                key: 42,
                value: u64::MAX,
            },
            WalRecord::TreeInsert { key: 42, value: 7 },
            WalRecord::TreeDelete { key: 0 },
        ]
    }

    #[test]
    fn round_trip_single_records() {
        for (i, rec) in samples().into_iter().enumerate() {
            let lsn = (i as u64) * 7 + 1;
            let bytes = rec.encode(lsn);
            assert_eq!(bytes.len(), rec.encoded_len());
            let decoded = decode_log(&bytes);
            assert_eq!(decoded.records, vec![(lsn, rec)]);
            assert_eq!(decoded.valid_bytes, bytes.len());
            assert_eq!(decoded.torn_bytes, 0);
        }
    }

    #[test]
    fn round_trip_concatenated_log() {
        let mut log = Vec::new();
        for (i, rec) in samples().iter().enumerate() {
            log.extend_from_slice(&rec.encode(i as u64 + 1));
        }
        let decoded = decode_log(&log);
        assert_eq!(decoded.records.len(), samples().len());
        for (i, (lsn, rec)) in decoded.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(rec, &samples()[i]);
        }
    }

    #[test]
    fn truncated_tail_is_discarded_at_every_cut() {
        // A two-record log cut at every possible byte boundary: the
        // decoder must keep exactly the records whose full encoding fits
        // before the cut, and never fabricate a record from the tail.
        let a = WalRecord::TreeUpsert { key: 1, value: 2 };
        let b = WalRecord::PoolWrite {
            offset: 64,
            data: vec![0xAB; 24],
        };
        let mut log = a.encode(1);
        let a_len = log.len();
        log.extend_from_slice(&b.encode(2));
        for cut in 0..=log.len() {
            let decoded = decode_log(&log[..cut]);
            let expect = usize::from(cut >= a_len) + usize::from(cut >= log.len());
            assert_eq!(decoded.records.len(), expect, "cut at {cut}");
            assert_eq!(decoded.valid_bytes + decoded.torn_bytes, cut);
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let a = WalRecord::TreeUpsert { key: 9, value: 9 };
        let b = WalRecord::TreeDelete { key: 3 };
        let clean = {
            let mut l = a.encode(1);
            l.extend_from_slice(&b.encode(2));
            l
        };
        // Flip one byte inside the second record: the first must survive,
        // the second must be discarded (CRC or magic mismatch).
        let a_len = a.encode(1).len();
        for i in a_len..clean.len() {
            let mut log = clean.clone();
            log[i] ^= 0xFF;
            let decoded = decode_log(&log);
            assert_eq!(decoded.records.len(), 1, "corrupt byte {i}");
            assert_eq!(decoded.records[0].1, a);
        }
    }

    #[test]
    fn pool_write_word_encodes_as_pool_write() {
        let word = WalRecord::PoolWriteWord {
            offset: 512,
            word: 0xDEAD_BEEF_CAFE_F00D,
        };
        let vec_form = WalRecord::PoolWrite {
            offset: 512,
            data: 0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes().to_vec(),
        };
        assert_eq!(word.encode(9), vec_form.encode(9));
        assert_eq!(word.encoded_len(), vec_form.encoded_len());
        // Decode always yields the general form.
        let decoded = decode_log(&word.encode(9));
        assert_eq!(decoded.records, vec![(9, vec_form)]);
    }

    #[test]
    fn fnv_is_position_sensitive() {
        assert_ne!(fnv1a(&[1, 2]), fnv1a(&[2, 1]));
        assert_ne!(fnv1a(&[0]), fnv1a(&[0, 0]));
    }
}
