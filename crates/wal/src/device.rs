//! The simulated NVMe log device.
//!
//! A sibling of the NIC model in `rdma-sim`: one FIFO queue ([`FifoLink`])
//! models the device's single submission stream, and occupancy is
//! analytic — a flush of `b` bytes holds the device for
//! `fsync_latency + b / write_bandwidth`, reads (recovery replay) for
//! `b / read_bandwidth`. The fixed fsync latency is what group commit
//! amortises: flushing ten coalesced records pays it once, flushing them
//! one-by-one pays it ten times.

use std::cell::Cell;

use simnet::resource::FifoLink;
use simnet::{Sim, SimDur, SimTime};

/// One memory server's log device.
pub struct NvmeDevice {
    link: FifoLink,
    write_bandwidth: f64,
    read_bandwidth: f64,
    fsync_latency: SimDur,
    flushes: Cell<u64>,
    reads: Cell<u64>,
}

impl NvmeDevice {
    /// New idle device.
    pub fn new(write_bandwidth: f64, read_bandwidth: f64, fsync_latency: SimDur) -> Self {
        assert!(
            write_bandwidth > 0.0 && read_bandwidth > 0.0,
            "device bandwidth must be positive"
        );
        NvmeDevice {
            link: FifoLink::new(),
            write_bandwidth,
            read_bandwidth,
            fsync_latency,
            flushes: Cell::new(0),
            reads: Cell::new(0),
        }
    }

    /// Device occupancy of one durable write (fsync + streaming).
    pub fn write_duration(&self, bytes: u64) -> SimDur {
        self.fsync_latency + SimDur::from_secs_f64(bytes as f64 / self.write_bandwidth)
    }

    /// Device occupancy of a sequential read of `bytes`.
    pub fn read_duration(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(bytes as f64 / self.read_bandwidth)
    }

    /// Reserve one durable write of `bytes` on the device queue; returns
    /// `(start, end)` of the occupancy (the caller sleeps until `end`).
    /// Counts as one device op.
    pub fn reserve_write(&self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.flushes.set(self.flushes.get() + 1);
        let dur = self.write_duration(bytes);
        let start = self.link.busy_until().max(now);
        let end = self.link.reserve(now, dur);
        (start, end)
    }

    /// Occupy the device for a sequential read of `bytes` (recovery
    /// replay), queueing FIFO behind in-flight writes.
    pub async fn read(&self, sim: &Sim, bytes: u64) {
        self.reads.set(self.reads.get() + 1);
        self.link.acquire(sim, self.read_duration(bytes)).await;
    }

    /// Durable write operations issued so far (the group-commit metric:
    /// one per flush, however many records the flush coalesced).
    pub fn flushes(&self) -> u64 {
        self.flushes.get()
    }

    /// Sequential read operations issued so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total virtual time the device has been occupied.
    pub fn busy_time(&self) -> SimDur {
        self.link.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_duration_includes_fsync_floor() {
        let dev = NvmeDevice::new(2e9, 4e9, SimDur::from_micros(10));
        // An empty flush still pays the fsync.
        assert_eq!(dev.write_duration(0), SimDur::from_micros(10));
        // 2 MB at 2 GB/s = 1 ms of streaming on top.
        assert_eq!(
            dev.write_duration(2_000_000),
            SimDur::from_micros(10) + SimDur::from_millis(1)
        );
        // Reads skip the fsync.
        assert_eq!(dev.read_duration(4_000_000), SimDur::from_millis(1));
    }

    #[test]
    fn writes_queue_fifo() {
        let dev = NvmeDevice::new(1e9, 1e9, SimDur::from_micros(1));
        let (s1, e1) = dev.reserve_write(SimTime::ZERO, 1_000);
        let (s2, e2) = dev.reserve_write(SimTime::ZERO, 1_000);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1.as_micros(), 2); // 1us fsync + 1us stream
        assert_eq!(s2, e1);
        assert_eq!(e2.as_micros(), 4);
        assert_eq!(dev.flushes(), 2);
    }
}
