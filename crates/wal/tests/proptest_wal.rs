//! Property tests for the WAL wire format: encode/decode round-trips
//! over arbitrary record sequences, and torn-tail truncation at every
//! generated cut point — the on-device invariants crash recovery leans
//! on (`decode_log` never fabricates a record, never loses a whole one
//! that was fully flushed).

use proptest::prelude::*;
use wal::record::{decode_log, WalRecord};

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (0u64..1 << 24, prop::collection::vec(0u8..=255, 0..96))
            .prop_map(|(offset, data)| WalRecord::PoolWrite { offset, data }),
        (8u64..1 << 30).prop_map(|next| WalRecord::PoolAllocTo { next }),
        (0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(key, value)| WalRecord::TreeUpsert { key, value }),
        (0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(key, value)| WalRecord::TreeInsert { key, value }),
        (0u64..u64::MAX).prop_map(|key| WalRecord::TreeDelete { key }),
    ]
}

fn encode_all(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut ends = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        log.extend_from_slice(&rec.encode(i as u64 + 1));
        ends.push(log.len());
    }
    (log, ends)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn arbitrary_logs_round_trip(
        records in prop::collection::vec(record_strategy(), 0..40),
    ) {
        let (log, _) = encode_all(&records);
        let decoded = decode_log(&log);
        prop_assert_eq!(decoded.valid_bytes, log.len());
        prop_assert_eq!(decoded.torn_bytes, 0);
        prop_assert_eq!(decoded.records.len(), records.len());
        for (i, (lsn, rec)) in decoded.records.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64 + 1);
            prop_assert_eq!(rec, &records[i]);
        }
    }

    #[test]
    fn torn_tails_keep_exactly_the_flushed_prefix(
        records in prop::collection::vec(record_strategy(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        // A crash mid-flush persists a byte-accurate prefix; the decoder
        // must keep every record fully inside the prefix and nothing of
        // the record straddling the cut.
        let (log, ends) = encode_all(&records);
        let cut = ((log.len() as f64) * cut_frac) as usize;
        let decoded = decode_log(&log[..cut]);
        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(decoded.records.len(), survivors);
        prop_assert_eq!(decoded.valid_bytes + decoded.torn_bytes, cut);
        for (i, (_, rec)) in decoded.records.iter().enumerate() {
            prop_assert_eq!(rec, &records[i]);
        }
    }

    #[test]
    fn corruption_never_yields_a_wrong_record(
        records in prop::collection::vec(record_strategy(), 1..20),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        // Flip one bit anywhere: decoding may stop early, but every
        // record it does return must match the original sequence
        // verbatim (CRCs make silent corruption astronomically unlikely;
        // with FNV-1a a single bit flip is always caught).
        let (mut log, _) = encode_all(&records);
        let pos = (((log.len() - 1) as f64) * flip_frac) as usize;
        log[pos] ^= 1 << flip_bit;
        let decoded = decode_log(&log);
        prop_assert!(decoded.records.len() <= records.len());
        for (i, (_, rec)) in decoded.records.iter().enumerate() {
            prop_assert_eq!(rec, &records[i]);
        }
    }
}
