//! End-of-run structural walk over B-link pages.
//!
//! Complements the online verb checker: after a workload quiesces, the
//! index must be a well-formed B-link structure — high keys ordered along
//! the sibling chain, every tree-referenced leaf reachable from the
//! chain, key counts within page capacity, no lock left held. The walk
//! reads pages through the designs' [`SetupSource`] (the untimed control
//! path — no simulated cost, and page geometry agreed with the engine by
//! construction) and covers all three designs:
//!
//! * **fine-grained** — leaf-chain walk plus a top-down walk from the
//!   root over the distributed inner levels;
//! * **hybrid** — leaf-chain walk plus each server's local upper tree
//!   (via [`blink`]'s own `check_invariants`);
//! * **coarse-grained** — each server's complete local tree.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blink::layout::lock_word;
use blink::node::{
    kind_of, level_of, version_lock_of, HeadNodeRef, InnerNodeRef, LeafNodeRef, NodeKind,
};
use blink::Key;
use namdex_core::{CoarseGrained, Design, FineGrained, Hybrid, SetupSource};
use rdma_sim::RemotePtr;
use simnet::SimTime;

use crate::{Sanitizer, Violation, ViolationKind};

/// Safety cap on chain/tree traversal (a cycle shows up long before).
const MAX_PAGES: usize = 1_000_000;

fn sv(ptr: RemotePtr, len: usize, time: SimTime, detail: String) -> Violation {
    Violation {
        kind: ViolationKind::Structural,
        server: ptr.server(),
        offset: ptr.offset(),
        len,
        time,
        client: None,
        detail,
    }
}

fn rp(p: blink::layout::Ptr) -> RemotePtr {
    RemotePtr::from_page_ptr(p)
}

/// Walk the leaf chain from `first`: returns findings plus the set of
/// leaf pages seen (raw remote-pointer form) for reachability checks.
fn walk_chain(src: &SetupSource, first: RemotePtr, out: &mut Vec<Violation>) -> BTreeSet<u64> {
    let layout = src.layout();
    let ps = layout.page_size();
    let now = src.cluster().sim().now();
    let mut leaves = BTreeSet::new();
    let mut head_targets: Vec<(RemotePtr, u64)> = Vec::new();
    let mut visited = BTreeSet::new();
    let mut prev_high: Option<Key> = None;
    let mut cur = first;
    let mut steps = 0usize;
    while !cur.is_null() {
        if !visited.insert(cur.raw()) {
            out.push(sv(cur, ps, now, "cycle in the leaf chain".into()));
            break;
        }
        steps += 1;
        if steps > MAX_PAGES {
            out.push(sv(cur, ps, now, "leaf chain exceeds page cap".into()));
            break;
        }
        let page = src.load(cur);
        if lock_word::is_locked(version_lock_of(&page)) {
            out.push(sv(cur, ps, now, "page left locked after quiescence".into()));
        }
        match kind_of(&page) {
            NodeKind::Head => {
                let head = HeadNodeRef::new(&page);
                if head.count() > layout.head_capacity() {
                    out.push(sv(
                        cur,
                        ps,
                        now,
                        format!(
                            "head count {} exceeds capacity {}",
                            head.count(),
                            layout.head_capacity()
                        ),
                    ));
                }
                for p in head.ptrs() {
                    head_targets.push((cur, rp(p).raw()));
                }
                cur = rp(head.right_sibling());
            }
            NodeKind::Leaf => {
                let leaf = LeafNodeRef::new(&page);
                if level_of(&page) != 0 {
                    out.push(sv(cur, ps, now, "leaf with non-zero level".into()));
                }
                if leaf.count() > layout.entry_capacity() {
                    out.push(sv(
                        cur,
                        ps,
                        now,
                        format!(
                            "leaf count {} exceeds capacity {}",
                            leaf.count(),
                            layout.entry_capacity()
                        ),
                    ));
                }
                let mut last: Option<Key> = None;
                for i in 0..leaf.count().min(layout.entry_capacity()) {
                    let (k, _, _) = leaf.entry(i);
                    if last.is_some_and(|l| l > k) {
                        out.push(sv(cur, ps, now, format!("leaf keys unsorted at slot {i}")));
                        break;
                    }
                    if k > leaf.high_key() {
                        out.push(sv(
                            cur,
                            ps,
                            now,
                            format!("key {k} above leaf high fence {}", leaf.high_key()),
                        ));
                        break;
                    }
                    if let Some(ph) = prev_high {
                        if k <= ph {
                            out.push(sv(
                                cur,
                                ps,
                                now,
                                format!("key {k} at or below previous high fence {ph}"),
                            ));
                            break;
                        }
                    }
                    last = Some(k);
                }
                if let Some(ph) = prev_high {
                    if leaf.high_key() < ph {
                        out.push(sv(
                            cur,
                            ps,
                            now,
                            format!(
                                "high keys not ascending along the chain: {} after {ph}",
                                leaf.high_key()
                            ),
                        ));
                    }
                }
                prev_high = Some(leaf.high_key());
                leaves.insert(cur.raw());
                cur = rp(leaf.right_sibling());
            }
            NodeKind::Inner => {
                out.push(sv(cur, ps, now, "inner node in the leaf chain".into()));
                break;
            }
        }
    }
    if prev_high != Some(blink::layout::KEY_MAX) {
        out.push(sv(
            first,
            ps,
            now,
            format!(
                "rightmost leaf high fence is {:?}, must cover +inf",
                prev_high
            ),
        ));
    }
    // Head prefetch lists must only reference leaves on the chain.
    for (head, target) in head_targets {
        if !leaves.contains(&target) {
            out.push(sv(
                head,
                ps,
                now,
                format!(
                    "head references page {} which is not a chain leaf",
                    RemotePtr::from_raw(target).offset()
                ),
            ));
        }
    }
    leaves
}

/// High key of an arbitrary node page.
fn high_key_of(page: &[u8]) -> Key {
    match kind_of(page) {
        NodeKind::Leaf => LeafNodeRef::new(page).high_key(),
        NodeKind::Inner => InnerNodeRef::new(page).high_key(),
        NodeKind::Head => blink::layout::KEY_MAX,
    }
}

/// Check the fine-grained design: leaf chain plus the distributed inner
/// levels from the root, including tree→chain reachability.
pub fn check_fg(idx: &FineGrained) -> Vec<Violation> {
    let src = idx.setup_source();
    let layout = src.layout();
    let ps = layout.page_size();
    let now = src.cluster().sim().now();
    let mut out = Vec::new();
    let chain = walk_chain(&src, idx.first(), &mut out);

    let mut stack = vec![idx.root()];
    let mut visited = BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if cur.is_null() || !visited.insert(cur.raw()) {
            continue;
        }
        if visited.len() > MAX_PAGES {
            out.push(sv(cur, ps, now, "inner walk exceeds page cap".into()));
            break;
        }
        let page = src.load(cur);
        match kind_of(&page) {
            NodeKind::Leaf => {
                if !chain.contains(&cur.raw()) {
                    out.push(sv(
                        cur,
                        ps,
                        now,
                        "leaf referenced by the tree is unreachable from the chain".into(),
                    ));
                }
            }
            NodeKind::Head => {
                out.push(sv(
                    cur,
                    ps,
                    now,
                    "head node referenced by inner level".into(),
                ));
            }
            NodeKind::Inner => {
                if lock_word::is_locked(version_lock_of(&page)) {
                    out.push(sv(cur, ps, now, "page left locked after quiescence".into()));
                }
                let node = InnerNodeRef::new(&page);
                if node.count() == 0 || node.count() > layout.entry_capacity() {
                    out.push(sv(
                        cur,
                        ps,
                        now,
                        format!(
                            "inner count {} outside [1, {}]",
                            node.count(),
                            layout.entry_capacity()
                        ),
                    ));
                    continue;
                }
                let mut prev: Option<Key> = None;
                for i in 0..node.count() {
                    let (sep, child) = node.entry(i);
                    if prev.is_some_and(|p| p >= sep) {
                        out.push(sv(
                            cur,
                            ps,
                            now,
                            format!("inner separators unsorted at slot {i}"),
                        ));
                    }
                    prev = Some(sep);
                    let cp = rp(child);
                    let child_page = src.load(cp);
                    let child_level = level_of(&child_page);
                    if child_level + 1 != level_of(&page) {
                        out.push(sv(
                            cur,
                            ps,
                            now,
                            format!(
                                "child level {child_level} under inner level {}",
                                level_of(&page)
                            ),
                        ));
                    }
                    let ch = high_key_of(&child_page);
                    if ch != sep {
                        out.push(sv(
                            cur,
                            ps,
                            now,
                            format!("child high fence {ch} != separator {sep} at slot {i}"),
                        ));
                    }
                    stack.push(cp);
                }
                if node.entry(node.count() - 1).0 != node.high_key() {
                    out.push(sv(cur, ps, now, "last separator != high key".into()));
                }
                stack.push(rp(node.right_sibling()));
            }
        }
    }
    out
}

/// Check one server's local tree via blink's own invariant checker,
/// converting a panic into a structural finding.
fn check_local_tree(
    node: &std::rc::Rc<nam::ServerNode>,
    server: usize,
    now: SimTime,
    out: &mut Vec<Violation>,
) {
    if !node.has_tree() {
        return;
    }
    let res = catch_unwind(AssertUnwindSafe(|| {
        node.with_tree(|t| t.check_invariants())
    }));
    if let Err(e) = res {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("local tree invariant panic");
        out.push(Violation {
            kind: ViolationKind::Structural,
            server,
            offset: 0,
            len: 0,
            time: now,
            client: None,
            detail: format!("local tree on server {server}: {msg}"),
        });
    }
}

/// Check the hybrid design: one-sided leaf chain plus each server's
/// local upper tree.
pub fn check_hybrid(idx: &Hybrid) -> Vec<Violation> {
    let mut out = Vec::new();
    walk_chain(&idx.setup_source(), idx.first(), &mut out);
    let now = idx.cluster().sim().now();
    for (s, node) in idx.nodes().iter().enumerate() {
        check_local_tree(node, s, now, &mut out);
    }
    out
}

/// Check the coarse-grained design: each server's complete local tree.
pub fn check_cg(idx: &CoarseGrained) -> Vec<Violation> {
    let mut out = Vec::new();
    let now = idx.cluster().sim().now();
    for (s, node) in idx.nodes().iter().enumerate() {
        check_local_tree(node, s, now, &mut out);
    }
    out
}

/// Check the learned design: the hybrid layout underneath it, plus the
/// model's routing table. A table entry may be *stale* (after a split
/// the leaf it points at covers less than the recorded high key) but
/// must never route *right* of the covering leaf: each entry must point
/// at a live chain page whose current high key is at most the recorded
/// one, and recorded highs must be strictly ascending — the conditions
/// under which the engine's sibling chase is guaranteed to correct any
/// prediction.
pub fn check_learned(idx: &namdex_core::Learned) -> Vec<Violation> {
    let mut out = check_hybrid(idx.tree());
    let Some(model) = idx.model() else {
        return out; // flushed model: nothing shipped, nothing to audit
    };
    let src = idx.tree().setup_source();
    let now = idx.tree().cluster().sim().now();
    let mut prev: Option<Key> = None;
    for &(high, raw) in model.table() {
        let ptr = RemotePtr::from_raw(raw);
        if prev.is_some_and(|p| p >= high) {
            out.push(sv(
                ptr,
                0,
                now,
                format!("model table highs not strictly ascending at {high}"),
            ));
            continue;
        }
        prev = Some(high);
        let page = src.load(ptr);
        let stale_right = match kind_of(&page) {
            NodeKind::Leaf => LeafNodeRef::new(&page).high_key() > high,
            // Heads are legal chain interposers the engine skips.
            NodeKind::Head => false,
            NodeKind::Inner => true,
        };
        if stale_right {
            out.push(sv(
                ptr,
                0,
                now,
                format!(
                    "model entry {high} routes right of its leaf (or to a \
                     non-chain page): predictions there cannot self-correct"
                ),
            ));
        }
    }
    out
}

/// Structural check for any design.
pub fn check_design(design: &Design) -> Vec<Violation> {
    match design {
        Design::Cg(d) => check_cg(d),
        Design::Fg(d) => check_fg(d),
        Design::Hybrid(d) => check_hybrid(d),
        Design::Learned(d) => check_learned(d),
    }
}

/// Eagerly register every page reachable in `idx` (chain and inner
/// levels) with the checker — pages built on the untimed setup path emit
/// no Alloc events, so the checker would otherwise only adopt them
/// lazily at their first lock CAS.
pub fn register_fg(san: &Sanitizer, idx: &FineGrained) {
    let src = idx.setup_source();
    let mut stack = vec![idx.root(), idx.first()];
    let mut visited = BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if cur.is_null() || !visited.insert(cur.raw()) || visited.len() > MAX_PAGES {
            continue;
        }
        san.register_page(cur);
        let page = src.load(cur);
        match kind_of(&page) {
            NodeKind::Leaf => stack.push(rp(LeafNodeRef::new(&page).right_sibling())),
            NodeKind::Head => {
                let head = HeadNodeRef::new(&page);
                stack.push(rp(head.right_sibling()));
            }
            NodeKind::Inner => {
                let node = InnerNodeRef::new(&page);
                for i in 0..node.count() {
                    stack.push(rp(node.entry(i).1));
                }
                stack.push(rp(node.right_sibling()));
            }
        }
    }
}

/// Eagerly register the hybrid design's one-sided leaf chain.
pub fn register_hybrid(san: &Sanitizer, idx: &Hybrid) {
    let src = idx.setup_source();
    let mut cur = idx.first();
    let mut visited = BTreeSet::new();
    while !cur.is_null() && visited.insert(cur.raw()) && visited.len() <= MAX_PAGES {
        san.register_page(cur);
        let page = src.load(cur);
        cur = match kind_of(&page) {
            NodeKind::Head => rp(HeadNodeRef::new(&page).right_sibling()),
            NodeKind::Leaf => rp(LeafNodeRef::new(&page).right_sibling()),
            NodeKind::Inner => RemotePtr::NULL,
        };
    }
}

/// Eagerly register whatever `design` keeps in one-sided memory (nothing
/// for the coarse-grained design: its pages live behind RPC handlers and
/// are covered by [`check_cg`]).
pub fn register_design(san: &Sanitizer, design: &Design) {
    match design {
        Design::Cg(_) => {}
        Design::Fg(d) => register_fg(san, d),
        Design::Hybrid(d) => register_hybrid(san, d),
        // The learned design's one-sided memory is the hybrid leaf
        // chain; the model itself is client-resident.
        Design::Learned(d) => register_hybrid(san, d.tree()),
    }
}
