#![warn(missing_docs)]

//! # sanitizer — a race detector for the simulated RDMA cluster
//!
//! The simulator applies verb effects atomically at their completion
//! instant, so protocol-level races (torn lock handoffs, version
//! rollbacks, writes landing on unlocked pages, reads of epoch-retired
//! memory) *happen* — but without a checker they only surface as
//! corrupted answers, usually far from the buggy verb. This crate turns
//! the verb stream exposed by `rdma-sim`'s `sanitizer` feature into an
//! online checker of the optimistic-lock-coupling protocol shared by all
//! three index designs (§3.2/§4.2 of the paper), plus an end-of-run
//! structural walk over the B-link pages ([`walk`]).
//!
//! ## Invariants enforced on the verb stream
//!
//! 1. **Lock discipline** — a `WRITE` overlapping a published node's
//!    bytes is legal only while that node's lock bit is held *by the
//!    writer* (acquired via the CAS observed earlier).
//! 2. **Version protocol** — a node's `(version, lock-bit)` word may only
//!    move as `v --CAS--> v|1 --FAA(+1)--> v+2`: lock acquisition keeps
//!    the version, unlock bumps it, and the version never decreases.
//!    A plain `WRITE` that changes the word, an unlock `FAA` on an
//!    unlocked word, an unlock by a non-holder, or a `CAS` installing
//!    anything but the lock transition are violations.
//! 3. **Atomic hygiene** — atomics must be 8-byte aligned and must not
//!    overlap in-flight non-atomic `WRITE`s from other clients (except on
//!    the lock word itself, where the holder's write-back legally crosses
//!    a contender's failing CAS — legal precisely because the write-back
//!    does not change the word, which invariant 2 checks).
//! 4. **No use-after-free** — no verb may touch a region retired by epoch
//!    maintenance (`namdex_core::gc::note_freed`).
//!
//! ## Private pages
//!
//! A freshly `RDMA_ALLOC`ed page is *private* to its allocator: the
//! protocol prepares split siblings and new roots with plain unlocked
//! `WRITE`s before publishing a pointer to them, and that is sound
//! because no other client can reach the page yet. The checker models
//! this: an allocation registers the page as private, the owner's
//! accesses to it are unchecked, and the page is *published* (full
//! checking begins) the first time any other client's verb — or any
//! lock CAS — touches it. Publication is permanent.
//!
//! Pages created on the untimed setup path (initial bulk load) produce no
//! verb events; register them eagerly with [`Sanitizer::register_page`]
//! or the design-aware walkers in [`walk`].

pub mod walk;

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use blink::layout::lock_word;
use rdma_sim::observer::{AttemptKind, VerbEvent, VerbKind, VerbObserver};
use rdma_sim::{Cluster, RemotePtr};
use simnet::SimTime;

/// Classification of a protocol violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// WRITE overlapping a published node not holding its lock.
    UnlockedWrite,
    /// Lock word moved outside the CAS/FAA protocol (rollback, unlock
    /// without lock, non-holder unlock, non-transition CAS).
    VersionProtocol,
    /// A plain WRITE changed a node's version/lock word.
    VersionTamper,
    /// Atomic verb on a non-8-byte-aligned offset.
    MisalignedAtomic,
    /// Atomic overlapping an in-flight non-atomic WRITE (or vice versa)
    /// from another client outside the lock word.
    AtomicRace,
    /// Verb touched a region retired by epoch GC.
    UseAfterFree,
    /// A lease-break CAS fired before the holder's lease expired: the
    /// breaker cannot have proof the holder is dead.
    LeaseBreak,
    /// A mutating verb succeeded against a server the client had seen as
    /// unreachable, without an intervening re-validating READ — the
    /// client may be acting on pre-crash cached state.
    UnreachableWrite,
    /// End-of-run structural walk found a malformed page or chain.
    Structural,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::UnlockedWrite => "unlocked-write",
            ViolationKind::VersionProtocol => "version-protocol",
            ViolationKind::VersionTamper => "version-tamper",
            ViolationKind::MisalignedAtomic => "misaligned-atomic",
            ViolationKind::AtomicRace => "atomic-race",
            ViolationKind::UseAfterFree => "use-after-free",
            ViolationKind::LeaseBreak => "lease-break",
            ViolationKind::UnreachableWrite => "unreachable-write",
            ViolationKind::Structural => "structural",
        };
        f.write_str(s)
    }
}

/// One detected violation, with enough context to find the buggy verb:
/// which server and byte range, at what virtual time, issued by whom.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Memory server the access targeted.
    pub server: usize,
    /// Start offset of the offending range in the server's pool.
    pub offset: u64,
    /// Length of the offending range.
    pub len: usize,
    /// Virtual time of the offending verb's completion (structural
    /// findings use the time of the walk).
    pub time: SimTime,
    /// Issuing client (endpoint id); `None` for structural findings.
    pub client: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] server {} range {}+{} t={}ns",
            self.kind,
            self.server,
            self.offset,
            self.len,
            self.time.as_nanos()
        )?;
        if let Some(c) = self.client {
            write!(f, " client {c}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Who holds a node's lock, per the checker's shadow state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Holder {
    /// Lock bit clear.
    Unlocked,
    /// Locked by this client's observed CAS.
    LockedBy(u64),
    /// Lock bit set but the acquirer was not observed (page published
    /// while locked, or the word was tampered with). Checked leniently.
    LockedUnknown,
}

/// A node lock found still held by the quiescence scan
/// ([`Sanitizer::held_locks`]).
#[derive(Clone, Copy, Debug)]
pub struct HeldLock {
    /// Memory server of the node.
    pub server: usize,
    /// Page-start offset of the node.
    pub offset: u64,
    /// The in-memory lock word at scan time.
    pub word: u64,
    /// Owner id recorded in the word ([`lock_word::owner_of`]).
    pub owner: u64,
}

#[derive(Clone, Copy, Debug)]
struct NodeState {
    /// Shadow copy of the 8-byte `(version, lock-bit)` word.
    word: u64,
    holder: Holder,
    /// `Some(owner)` while the page is still private to its allocator.
    private_to: Option<u64>,
    /// When the current locked word was first observed (drives the
    /// lease-break legality check; meaningless while unlocked).
    locked_since: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct Access {
    offset: u64,
    len: usize,
    issued: SimTime,
    time: SimTime,
    client: u64,
}

#[derive(Clone, Copy, Debug)]
struct Freed {
    len: usize,
    time: SimTime,
}

/// How many recently completed writes/atomics are kept per server for the
/// in-flight overlap check. Verbs overlap only within a round trip, so a
/// small window is ample.
const RING: usize = 256;

/// Hard cap on stored violations; further ones are counted, not stored.
const MAX_VIOLATIONS: usize = 1024;

#[derive(Default)]
struct State {
    /// Registered page-sized nodes, keyed by `(server, start offset)`.
    nodes: BTreeMap<(usize, u64), NodeState>,
    /// Epoch-retired regions, keyed by `(server, start offset)`.
    freed: BTreeMap<(usize, u64), Freed>,
    max_freed_len: usize,
    writes: VecDeque<(usize, Access)>,
    atomics: VecDeque<(usize, Access)>,
    violations: Vec<Violation>,
    dropped: usize,
    verbs_seen: u64,
    /// `(client, server)` pairs that saw `ServerUnreachable` and have not
    /// re-validated with a successful READ since.
    unreachable: BTreeMap<(u64, usize), SimTime>,
}

/// The online protocol checker. Install it on a cluster with
/// [`Sanitizer::install`]; it receives every completed verb, maintains
/// shadow lock state per registered page, and accumulates [`Violation`]s.
pub struct Sanitizer {
    cluster: Cluster,
    page_size: usize,
    state: RefCell<State>,
}

impl Sanitizer {
    /// Build a checker for `cluster` (pages are `page_size` bytes) and
    /// register it as one of the cluster's verb observers (other
    /// observers — e.g. telemetry — may coexist).
    pub fn install(cluster: &Cluster, page_size: usize) -> Rc<Sanitizer> {
        assert!(page_size >= 8, "page must at least hold the lock word");
        let san = Rc::new(Sanitizer {
            cluster: cluster.clone(),
            page_size,
            state: RefCell::new(State::default()),
        });
        cluster.add_observer(san.clone());
        san
    }

    /// The cluster this checker observes.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Register the page at `ptr` as a published node, seeding the shadow
    /// lock word from current memory. Use for pages created on the
    /// untimed setup path (which emits no verb events).
    pub fn register_page(&self, ptr: RemotePtr) {
        let word = self.read_word(ptr.server(), ptr.offset());
        let holder = if lock_word::is_locked(word) {
            Holder::LockedUnknown
        } else {
            Holder::Unlocked
        };
        self.state.borrow_mut().nodes.insert(
            (ptr.server(), ptr.offset()),
            NodeState {
                word,
                holder,
                private_to: None,
                locked_since: self.cluster.sim().now(),
            },
        );
    }

    /// Number of registered (private or published) nodes.
    pub fn nodes_tracked(&self) -> usize {
        self.state.borrow().nodes.len()
    }

    /// Number of verb events observed so far.
    pub fn verbs_seen(&self) -> u64 {
        self.state.borrow().verbs_seen
    }

    /// Violations recorded so far (capped at an internal limit; see
    /// [`Sanitizer::dropped`]).
    pub fn violations(&self) -> Vec<Violation> {
        self.state.borrow().violations.clone()
    }

    /// Violations discarded after the storage cap was hit.
    pub fn dropped(&self) -> usize {
        self.state.borrow().dropped
    }

    /// Whether no violation has been detected.
    pub fn is_clean(&self) -> bool {
        self.state.borrow().violations.is_empty()
    }

    /// Panic with a full report unless the run is clean.
    pub fn assert_clean(&self) {
        let st = self.state.borrow();
        if st.violations.is_empty() {
            return;
        }
        let mut msg = format!(
            "sanitizer: {} protocol violation(s) ({} dropped) over {} verbs:\n",
            st.violations.len(),
            st.dropped,
            st.verbs_seen
        );
        for v in &st.violations {
            msg.push_str(&format!("  {v}\n"));
        }
        drop(st);
        panic!("{msg}");
    }

    /// Scan every tracked node's *current in-memory* lock word and
    /// report those still held — the orphaned-lock detector, meant to
    /// run at quiescence (`Sim::live_tasks() == 0`). A lock held with no
    /// task left to release it is a leak: either a client path exited
    /// without unlocking (a protocol bug) or the holder was killed and
    /// no contender has broken the lease yet (expected only in runs that
    /// kill clients). Callers decide which holders are excusable, e.g.
    /// by checking `Cluster::client_dead(h.owner)`.
    pub fn held_locks(&self) -> Vec<HeldLock> {
        let keys: Vec<(usize, u64)> = self.state.borrow().nodes.keys().copied().collect();
        keys.into_iter()
            .filter_map(|(server, offset)| {
                let word = self.read_word(server, offset);
                lock_word::is_locked(word).then(|| HeldLock {
                    server,
                    offset,
                    word,
                    owner: lock_word::owner_of(word),
                })
            })
            .collect()
    }

    /// Run the end-of-run structural walk for `design` and fold any
    /// findings into this checker's violation list. Returns the number of
    /// structural findings.
    pub fn check_structure(&self, design: &namdex_core::Design) -> usize {
        let found = walk::check_design(design);
        let n = found.len();
        let mut st = self.state.borrow_mut();
        for v in found {
            push_violation(&mut st, v);
        }
        n
    }

    // ---- internals -----------------------------------------------------

    fn read_word(&self, server: usize, offset: u64) -> u64 {
        let b = self.cluster.setup_read(RemotePtr::new(server, offset), 8);
        u64::from_le_bytes(b.try_into().expect("8-byte word"))
    }

    /// Node start offsets whose page intersects `[off, off + len)` on
    /// `server`.
    fn intersecting_nodes(st: &State, ps: usize, server: usize, off: u64, len: usize) -> Vec<u64> {
        let lo = off.saturating_sub(ps as u64 - 1);
        let hi = off + len as u64;
        st.nodes
            .range((server, lo)..(server, hi))
            .filter(|(&(_, start), _)| start + ps as u64 > off)
            .map(|(&(_, start), _)| start)
            .collect()
    }

    fn violation(&self, st: &mut State, kind: ViolationKind, ev: &VerbEvent, detail: String) {
        push_violation(
            st,
            Violation {
                kind,
                server: ev.server,
                offset: ev.offset,
                len: ev.len,
                time: ev.time,
                client: Some(ev.client),
                detail,
            },
        );
    }

    /// Flip a node from private to published, seeding the shadow word.
    fn publish(st: &mut State, server: usize, start: u64, word: u64, time: SimTime) {
        if let Some(n) = st.nodes.get_mut(&(server, start)) {
            n.private_to = None;
            n.word = word;
            n.holder = if lock_word::is_locked(word) {
                Holder::LockedUnknown
            } else {
                Holder::Unlocked
            };
            n.locked_since = time;
        }
    }

    fn check_freed(&self, st: &mut State, ev: &VerbEvent) {
        if st.freed.is_empty() {
            return;
        }
        let lo = ev.offset.saturating_sub(st.max_freed_len.max(1) as u64 - 1);
        let hi = ev.offset + ev.len as u64;
        let hits: Vec<(u64, Freed)> = st
            .freed
            .range((ev.server, lo)..(ev.server, hi))
            .filter(|(&(_, start), f)| start + f.len as u64 > ev.offset)
            .map(|(&(_, start), f)| (start, *f))
            .collect();
        for (start, f) in hits {
            self.violation(
                st,
                ViolationKind::UseAfterFree,
                ev,
                format!(
                    "{:?} touches region {}+{} retired at t={}ns",
                    ev.kind,
                    start,
                    f.len,
                    f.time.as_nanos()
                ),
            );
        }
    }

    /// Record `ev` in `own` and flag time-and-range overlaps against
    /// `other` (accesses of the opposing kind) from different clients.
    /// Overlap confined to a registered lock word is exempt (see module
    /// docs, invariant 3).
    fn check_inflight(&self, st: &mut State, ev: &VerbEvent, atomic: bool) {
        let acc = Access {
            offset: ev.offset,
            len: ev.len,
            issued: ev.issued,
            time: ev.time,
            client: ev.client,
        };
        let ps = self.page_size as u64;
        let mut hits = Vec::new();
        {
            let other = if atomic { &st.writes } else { &st.atomics };
            for &(srv, a) in other.iter() {
                if srv != ev.server || a.client == ev.client {
                    continue;
                }
                let ilo = a.offset.max(ev.offset);
                let ihi = (a.offset + a.len as u64).min(ev.offset + ev.len as u64);
                if ilo >= ihi {
                    continue;
                }
                // Completed strictly before the other was issued → no
                // temporal overlap.
                if a.time <= ev.issued || ev.time <= a.issued {
                    continue;
                }
                // Exempt if the intersection sits inside some registered
                // node's lock word.
                let word_start = st
                    .nodes
                    .range((ev.server, ilo.saturating_sub(ps - 1))..(ev.server, ihi))
                    .map(|(&(_, s), _)| s)
                    .find(|&s| ilo >= s && ihi <= s + 8);
                if word_start.is_some() {
                    continue;
                }
                hits.push((a, ilo, ihi));
            }
        }
        for (a, ilo, ihi) in hits {
            self.violation(
                st,
                ViolationKind::AtomicRace,
                ev,
                format!(
                    "{} [{}, {}) overlaps in-flight {} by client {} (issued t={}ns, \
                     completed t={}ns) outside any lock word",
                    if atomic { "atomic" } else { "WRITE" },
                    ilo,
                    ihi,
                    if atomic { "WRITE" } else { "atomic" },
                    a.client,
                    a.issued.as_nanos(),
                    a.time.as_nanos()
                ),
            );
        }
        let ring = if atomic {
            &mut st.atomics
        } else {
            &mut st.writes
        };
        ring.push_back((ev.server, acc));
        if ring.len() > RING {
            ring.pop_front();
        }
    }

    fn on_write(&self, st: &mut State, ev: &VerbEvent) {
        let ps = self.page_size;
        for start in Self::intersecting_nodes(st, ps, ev.server, ev.offset, ev.len) {
            let node = st.nodes[&(ev.server, start)];
            match node.private_to {
                Some(owner) if owner == ev.client => continue, // private prep write
                Some(_) => {
                    // First touch by a non-owner publishes; the word is
                    // taken from memory (post-effect), so this write
                    // itself is not judged against pre-publication state.
                    let word = self.read_word(ev.server, start);
                    Self::publish(st, ev.server, start, word, ev.time);
                    continue;
                }
                None => {}
            }
            match node.holder {
                Holder::LockedBy(c) if c == ev.client => {}
                Holder::LockedUnknown => {}
                Holder::Unlocked => self.violation(
                    st,
                    ViolationKind::UnlockedWrite,
                    ev,
                    format!("WRITE overlaps node {start} whose lock is not held"),
                ),
                Holder::LockedBy(c) => self.violation(
                    st,
                    ViolationKind::UnlockedWrite,
                    ev,
                    format!("WRITE overlaps node {start} locked by client {c}"),
                ),
            }
            // A write fully covering the lock word must leave it intact.
            if ev.offset <= start && ev.offset + ev.len as u64 >= start + 8 {
                let mem = self.read_word(ev.server, start);
                if mem != node.word {
                    self.violation(
                        st,
                        ViolationKind::VersionTamper,
                        ev,
                        format!(
                            "WRITE changed node {start} version/lock word \
                             {:#x} -> {:#x}",
                            node.word, mem
                        ),
                    );
                    // Resync to memory so later checks stay meaningful.
                    if let Some(n) = st.nodes.get_mut(&(ev.server, start)) {
                        n.word = mem;
                        n.holder = if lock_word::is_locked(mem) {
                            Holder::LockedUnknown
                        } else {
                            Holder::Unlocked
                        };
                        n.locked_since = ev.time;
                    }
                }
            }
        }
        self.check_inflight(st, ev, false);
    }

    fn on_atomic(&self, st: &mut State, ev: &VerbEvent) {
        if !ev.offset.is_multiple_of(8) {
            self.violation(
                st,
                ViolationKind::MisalignedAtomic,
                ev,
                format!("{:?} at non-8-byte-aligned offset", ev.kind),
            );
        }
        let ps = self.page_size;
        // The (single) node whose page contains this word, if any.
        let start = Self::intersecting_nodes(st, ps, ev.server, ev.offset, ev.len)
            .into_iter()
            .next();
        match ev.kind {
            VerbKind::Cas {
                expected,
                new,
                prev,
            } => {
                let success = prev == expected;
                let acquire_shape = lock_word::is_acquire(expected, new);
                let break_shape = lock_word::is_lease_break(expected, new);
                match start {
                    None => {
                        // Unregistered: a successful acquire-shaped CAS is
                        // the protocol's lock acquisition — lazily adopt
                        // the page (covers runtime-split pages the eager
                        // walk never saw). Anything else is a raw atomic
                        // outside the checker's scope.
                        if success && acquire_shape {
                            st.nodes.insert(
                                (ev.server, ev.offset),
                                NodeState {
                                    word: new,
                                    holder: Holder::LockedBy(ev.client),
                                    private_to: None,
                                    locked_since: ev.time,
                                },
                            );
                        }
                    }
                    Some(start) if start == ev.offset => {
                        let node = st.nodes[&(ev.server, start)];
                        if node.private_to.is_some() {
                            // Any lock-word CAS publishes a private page.
                            Self::publish(st, ev.server, start, prev, ev.time);
                        }
                        let node = st.nodes[&(ev.server, start)];
                        if success {
                            if acquire_shape {
                                if node.word != prev && node.private_to.is_none() {
                                    self.violation(
                                        st,
                                        ViolationKind::VersionProtocol,
                                        ev,
                                        format!(
                                            "lock CAS found word {prev:#x} but checker \
                                             tracked {:#x} (unobserved mutation)",
                                            node.word
                                        ),
                                    );
                                }
                                if let Some(n) = st.nodes.get_mut(&(ev.server, start)) {
                                    n.word = new;
                                    n.holder = Holder::LockedBy(ev.client);
                                    n.locked_since = ev.time;
                                }
                            } else if break_shape {
                                // Lease break: legal only after the same
                                // locked word has been held a full lease.
                                let lease = self.cluster.spec().lease_duration;
                                let held = ev.time.since(node.locked_since);
                                if held < lease {
                                    self.violation(
                                        st,
                                        ViolationKind::LeaseBreak,
                                        ev,
                                        format!(
                                            "lease break of word {prev:#x} after only \
                                             {}ns held (lease is {}ns)",
                                            held.as_nanos(),
                                            lease.as_nanos()
                                        ),
                                    );
                                }
                                if let Some(n) = st.nodes.get_mut(&(ev.server, start)) {
                                    n.word = new;
                                    n.holder = Holder::Unlocked;
                                }
                            } else {
                                let mut what = format!(
                                    "CAS moved lock word {prev:#x} -> {new:#x}, not the \
                                     lock transition v -> v|1"
                                );
                                if new & !1 < prev & !1 {
                                    what.push_str(" (version rollback)");
                                }
                                self.violation(st, ViolationKind::VersionProtocol, ev, what);
                                if let Some(n) = st.nodes.get_mut(&(ev.server, start)) {
                                    n.word = new;
                                    n.holder = if lock_word::is_locked(new) {
                                        Holder::LockedUnknown
                                    } else {
                                        Holder::Unlocked
                                    };
                                    n.locked_since = ev.time;
                                }
                            }
                        } else if node.word != prev && node.private_to.is_none() {
                            self.violation(
                                st,
                                ViolationKind::VersionProtocol,
                                ev,
                                format!(
                                    "failed CAS observed word {prev:#x} but checker \
                                     tracked {:#x} (unobserved mutation)",
                                    node.word
                                ),
                            );
                            if let Some(n) = st.nodes.get_mut(&(ev.server, start)) {
                                n.word = prev;
                                n.holder = if lock_word::is_locked(prev) {
                                    Holder::LockedUnknown
                                } else {
                                    Holder::Unlocked
                                };
                                n.locked_since = ev.time;
                            }
                        }
                    }
                    Some(_) => {
                        // Atomic inside a node's payload: not part of the
                        // protocol; only the overlap check below applies.
                    }
                }
            }
            VerbKind::Faa { add, prev } => {
                if let Some(start) = start {
                    if start == ev.offset {
                        let node = st.nodes[&(ev.server, start)];
                        if node.private_to.is_some() {
                            Self::publish(st, ev.server, start, prev, ev.time);
                        }
                        let node = st.nodes[&(ev.server, start)];
                        let new = prev.wrapping_add(add);
                        if !lock_word::is_locked(prev) {
                            self.violation(
                                st,
                                ViolationKind::VersionProtocol,
                                ev,
                                format!("unlock FAA on unlocked word {prev:#x} (no lock held)"),
                            );
                        } else {
                            if add != 1 {
                                self.violation(
                                    st,
                                    ViolationKind::VersionProtocol,
                                    ev,
                                    format!("unlock FAA with addend {add}, expected 1"),
                                );
                            }
                            match node.holder {
                                Holder::LockedBy(c) if c != ev.client => self.violation(
                                    st,
                                    ViolationKind::VersionProtocol,
                                    ev,
                                    format!(
                                        "unlock FAA by client {} but node {start} is \
                                         locked by client {c}",
                                        ev.client
                                    ),
                                ),
                                _ => {}
                            }
                        }
                        if let Some(n) = st.nodes.get_mut(&(ev.server, start)) {
                            n.word = new;
                            n.holder = if lock_word::is_locked(new) {
                                Holder::LockedUnknown
                            } else {
                                Holder::Unlocked
                            };
                            n.locked_since = ev.time;
                        }
                    }
                }
            }
            _ => unreachable!("on_atomic only sees Cas/Faa"),
        }
        self.check_inflight(st, ev, true);
    }
}

impl Sanitizer {
    /// A mutating verb from a client whose last contact with this server
    /// ended in `ServerUnreachable` (no re-validating READ since) may be
    /// applying pre-crash cached state. Reported once per episode.
    fn check_unreachable_mutation(&self, st: &mut State, ev: &VerbEvent) {
        if let Some(seen) = st.unreachable.remove(&(ev.client, ev.server)) {
            self.violation(
                st,
                ViolationKind::UnreachableWrite,
                ev,
                format!(
                    "{:?} without re-validating READ after server was \
                     unreachable at t={}ns",
                    ev.kind,
                    seen.as_nanos()
                ),
            );
        }
    }
}

fn push_violation(st: &mut State, v: Violation) {
    if st.violations.len() >= MAX_VIOLATIONS {
        st.dropped += 1;
    } else {
        st.violations.push(v);
    }
}

impl VerbObserver for Sanitizer {
    fn on_verb(&self, ev: &VerbEvent) {
        let mut st = self.state.borrow_mut();
        st.verbs_seen += 1;
        match ev.kind {
            VerbKind::Alloc => {
                // Allocation of a page-sized region: track it as private
                // to the allocator. (Bump allocation never reuses freed
                // space, so no freed-overlap check applies.)
                if ev.len == self.page_size {
                    st.nodes.insert(
                        (ev.server, ev.offset),
                        NodeState {
                            word: 0,
                            holder: Holder::Unlocked,
                            private_to: Some(ev.client),
                            locked_since: ev.time,
                        },
                    );
                }
            }
            VerbKind::Read => {
                // A successful READ re-validates the client's view of
                // this server after an unreachable episode.
                st.unreachable.remove(&(ev.client, ev.server));
                self.check_freed(&mut st, ev);
                // A read by a non-owner publishes private pages it covers.
                let ps = self.page_size;
                let hits = Self::intersecting_nodes(&st, ps, ev.server, ev.offset, ev.len);
                for start in hits {
                    let node = st.nodes[&(ev.server, start)];
                    if matches!(node.private_to, Some(owner) if owner != ev.client) {
                        let word = self.read_word(ev.server, start);
                        Self::publish(&mut st, ev.server, start, word, ev.time);
                    }
                }
            }
            VerbKind::Write => {
                self.check_unreachable_mutation(&mut st, ev);
                self.check_freed(&mut st, ev);
                self.on_write(&mut st, ev);
            }
            VerbKind::Cas { .. } | VerbKind::Faa { .. } => {
                self.check_unreachable_mutation(&mut st, ev);
                self.check_freed(&mut st, ev);
                self.on_atomic(&mut st, ev);
            }
        }
    }

    fn on_unreachable(&self, client: u64, server: usize, kind: AttemptKind, time: SimTime) {
        let _ = kind;
        let mut st = self.state.borrow_mut();
        st.unreachable.entry((client, server)).or_insert(time);
    }

    fn on_server_recovered(&self, server: usize, time: SimTime) {
        // Recovery rewound this server's memory to the durable prefix:
        // a mutation that applied before the crash but never reached
        // the log has been *undone*, so shadow words tracked from
        // pre-crash verbs can be stale — legitimately, not through any
        // protocol violation. Resync every published node on the server
        // from the recovered memory. Private (pre-publish) pages keep
        // their owner: their raw writes are outside the protocol checks
        // anyway, and a reverted allocation is simply overwritten when
        // the offset is handed out again.
        let offsets: Vec<u64> = self
            .state
            .borrow()
            .nodes
            .iter()
            .filter(|(&(s, _), n)| s == server && n.private_to.is_none())
            .map(|(&(_, off), _)| off)
            .collect();
        for off in offsets {
            let word = self.read_word(server, off);
            if let Some(n) = self.state.borrow_mut().nodes.get_mut(&(server, off)) {
                n.word = word;
                n.holder = if lock_word::is_locked(word) {
                    Holder::LockedUnknown
                } else {
                    Holder::Unlocked
                };
                n.locked_since = time;
            }
        }
    }

    fn on_free(&self, server: usize, offset: u64, len: usize, time: SimTime) {
        let mut st = self.state.borrow_mut();
        st.freed.insert((server, offset), Freed { len, time });
        st.max_freed_len = st.max_freed_len.max(len);
        // Retired pages stop being protocol nodes.
        let ps = self.page_size as u64;
        let starts: Vec<u64> = st
            .nodes
            .range((server, offset.saturating_sub(ps - 1))..(server, offset + len as u64))
            .filter(|(&(_, s), _)| s + ps > offset)
            .map(|(&(_, s), _)| s)
            .collect();
        for s in starts {
            st.nodes.remove(&(server, s));
        }
    }
}
