//! RPC wire-format sizes.
//!
//! The two-sided designs ship small request/response messages; their
//! sizes determine NIC occupancy (the coarse-grained design's network
//! efficiency advantage for point queries in Fig. 9 comes from shipping
//! one key and one value instead of whole pages).
//!
//! Every message carries an 8-byte header (opcode, index id, flags).

/// Message header bytes (opcode + index id + flags).
pub const HEADER: usize = 8;
/// One key or value on the wire.
pub const WORD: usize = 8;

/// Point-lookup request: header + key.
pub const fn lookup_req() -> usize {
    HEADER + WORD
}

/// Point-lookup response: header + optional value.
pub const fn lookup_resp() -> usize {
    HEADER + WORD
}

/// Range request: header + lo + hi.
pub const fn range_req() -> usize {
    HEADER + 2 * WORD
}

/// Range response carrying `n` `(key, value)` pairs.
pub const fn range_resp(n: usize) -> usize {
    HEADER + n * 2 * WORD
}

/// Range response shipping whole qualifying leaf pages (what the paper's
/// coarse-grained implementation transfers: "fine- and coarse-grained
/// need to transfer approx. 1600 pages ... from the leaf level", §6.1).
pub const fn range_resp_pages(pages: usize, page_size: usize) -> usize {
    HEADER + pages * page_size
}

/// Insert request: header + key + value.
pub const fn insert_req() -> usize {
    HEADER + 2 * WORD
}

/// Insert/delete acknowledgement.
pub const fn ack() -> usize {
    HEADER
}

/// Delete request: header + key.
pub const fn delete_req() -> usize {
    HEADER + WORD
}

/// Hybrid traversal response: header + leaf remote pointer (§5.2 — "the
/// RPC only returns the remote pointer to the leaf node").
pub const fn leaf_ptr_resp() -> usize {
    HEADER + WORD
}

/// Hybrid new-leaf registration request: header + start key + remote
/// pointer (§5.2).
pub const fn install_leaf_req() -> usize {
    HEADER + 2 * WORD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_messages_are_small() {
        assert_eq!(lookup_req(), 16);
        assert_eq!(lookup_resp(), 16);
        assert_eq!(ack(), 8);
    }

    #[test]
    fn range_response_scales_with_result() {
        assert_eq!(range_resp(0), 8);
        assert_eq!(range_resp(100), 8 + 1600);
        assert!(range_resp(1000) > 100 * range_resp(0));
    }
}
