//! Per-memory-server software state and the handler CPU cost model.

use std::cell::RefCell;

use blink::{LocalTree, WorkStats};
use rdma_sim::ClusterSpec;
use simnet::SimDur;

use crate::lock::LockTable;

/// Software state of one memory server: the local B-link tree it serves
/// over RPC (a coarse-grained partition, or the hybrid design's upper
/// levels) and its virtual page-lock table.
pub struct ServerNode {
    /// The server's local tree, if this design gives it one.
    pub tree: RefCell<Option<LocalTree>>,
    /// Virtual page locks for handler spin-wait modelling.
    pub locks: LockTable,
}

impl ServerNode {
    /// Empty node (no tree installed yet).
    pub fn new() -> Self {
        ServerNode {
            tree: RefCell::new(None),
            locks: LockTable::new(),
        }
    }

    /// Install this server's local tree.
    pub fn install_tree(&self, tree: LocalTree) {
        *self.tree.borrow_mut() = Some(tree);
    }

    /// Run `f` against the installed tree. Panics if none is installed.
    pub fn with_tree<R>(&self, f: impl FnOnce(&mut LocalTree) -> R) -> R {
        f(self
            .tree
            .borrow_mut()
            .as_mut()
            .expect("no local tree installed on this server"))
    }

    /// Whether a tree is installed.
    pub fn has_tree(&self) -> bool {
        self.tree.borrow().is_some()
    }
}

impl Default for ServerNode {
    fn default() -> Self {
        Self::new()
    }
}

/// Translate the work an RPC handler performed into CPU service time
/// using the spec's cost constants. The fixed per-RPC cost covers
/// receive/dispatch/send; traversal work scales with nodes visited,
/// entries scanned, and splits performed.
pub fn handler_cpu_time(spec: &ClusterSpec, work: WorkStats) -> SimDur {
    spec.rpc_fixed_cpu
        + spec.cpu_per_node * (work.nodes_visited + work.sibling_hops) as u64
        + spec.cpu_per_entry * work.entries_scanned as u64
        + spec.cpu_per_split * work.splits as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use blink::PageLayout;

    #[test]
    fn install_and_use_tree() {
        let node = ServerNode::new();
        assert!(!node.has_tree());
        let mut tree = LocalTree::new(PageLayout::default());
        tree.insert(1, 10);
        node.install_tree(tree);
        assert!(node.has_tree());
        let v = node.with_tree(|t| t.get(1).0);
        assert_eq!(v, Some(10));
    }

    #[test]
    fn cpu_time_scales_with_work() {
        let spec = ClusterSpec::default();
        let small = handler_cpu_time(
            &spec,
            WorkStats {
                nodes_visited: 3,
                entries_scanned: 1,
                ..WorkStats::default()
            },
        );
        let large = handler_cpu_time(
            &spec,
            WorkStats {
                nodes_visited: 6,
                entries_scanned: 1000,
                splits: 2,
                sibling_hops: 1,
                ..WorkStats::default()
            },
        );
        assert!(large > small);
        assert!(small >= spec.rpc_fixed_cpu);
    }
}
