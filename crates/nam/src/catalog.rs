//! The catalog service.
//!
//! §4.2: "compute servers need to know the remote pointer for the root
//! node. This can be implemented as part of a catalog service that is
//! anyway used during query compilation and optimization." The catalog
//! maps index names to the metadata a compute server needs before its
//! first access: the design kind, the global root (fine-grained), and/or
//! the partition map (coarse-grained, hybrid).

use std::collections::BTreeMap;

use rdma_sim::RemotePtr;

use crate::partition::PartitionMap;

/// Which of the paper's three designs an index uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Design 1 (§3): coarse-grained distribution, two-sided access.
    CoarseGrained,
    /// Design 2 (§4): fine-grained distribution, one-sided access.
    FineGrained,
    /// Design 3 (§5): hybrid.
    Hybrid,
}

/// Everything a compute server must know to access an index.
#[derive(Clone, Debug)]
pub struct IndexDescriptor {
    /// The design this index uses.
    pub kind: IndexKind,
    /// Root remote pointer (fine-grained only; NULL otherwise).
    pub root: RemotePtr,
    /// Partition map (coarse-grained and hybrid; `None` for fine-grained).
    pub partition: Option<PartitionMap>,
}

/// Name → descriptor registry.
#[derive(Default)]
pub struct Catalog {
    entries: BTreeMap<String, IndexDescriptor>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) an index.
    pub fn register(&mut self, name: impl Into<String>, desc: IndexDescriptor) {
        self.entries.insert(name.into(), desc);
    }

    /// Look up an index by name.
    pub fn lookup(&self, name: &str) -> Option<&IndexDescriptor> {
        self.entries.get(name)
    }

    /// Registered index names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(
            "orders_idx",
            IndexDescriptor {
                kind: IndexKind::FineGrained,
                root: RemotePtr::new(0, 64),
                partition: None,
            },
        );
        let d = cat.lookup("orders_idx").expect("registered");
        assert_eq!(d.kind, IndexKind::FineGrained);
        assert_eq!(d.root.server(), 0);
        assert!(cat.lookup("missing").is_none());
        assert_eq!(cat.names().count(), 1);
    }

    #[test]
    fn replace_updates() {
        let mut cat = Catalog::new();
        let mk = |server| IndexDescriptor {
            kind: IndexKind::CoarseGrained,
            root: RemotePtr::NULL,
            partition: Some(PartitionMap::range_uniform(server, 100)),
        };
        cat.register("t", mk(2));
        cat.register("t", mk(4));
        let d = cat.lookup("t").unwrap();
        assert_eq!(d.partition.as_ref().unwrap().num_servers(), 4);
    }
}
