//! The catalog service.
//!
//! §4.2: "compute servers need to know the remote pointer for the root
//! node. This can be implemented as part of a catalog service that is
//! anyway used during query compilation and optimization." The catalog
//! maps index names to the metadata a compute server needs before its
//! first access: the design kind, the global root (fine-grained), and/or
//! the partition map (coarse-grained, hybrid).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use learned_index::PgmModel;
use rdma_sim::RemotePtr;

use crate::partition::PartitionMap;

/// Which of the four designs an index uses (the paper's three plus the
/// learned-routing extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Design 1 (§3): coarse-grained distribution, two-sided access.
    CoarseGrained,
    /// Design 2 (§4): fine-grained distribution, one-sided access.
    FineGrained,
    /// Design 3 (§5): hybrid.
    Hybrid,
    /// Design 4: learned-index routing over the hybrid layout — the
    /// catalog additionally ships the trained model to clients.
    Learned,
}

/// Everything a compute server must know to access an index.
#[derive(Clone, Debug)]
pub struct IndexDescriptor {
    /// The design this index uses.
    pub kind: IndexKind,
    /// Root remote pointer (fine-grained only; NULL otherwise).
    pub root: RemotePtr,
    /// Partition map (coarse-grained and hybrid; `None` for fine-grained).
    pub partition: Option<PartitionMap>,
    /// Trained routing model (learned design only). Shipped by value
    /// through the catalog like the root pointer: a client that resolves
    /// the descriptor can predict leaves with no further communication.
    pub model: Option<Rc<PgmModel>>,
}

/// Name → descriptor registry.
///
/// The catalog also carries a *generation* counter: any event that may
/// invalidate cached descriptors (a memory-server restart, a topology
/// change) bumps it, and compute servers that cached a descriptor
/// re-resolve when the generation they saw is stale. The counter is a
/// shared `Rc<Cell<_>>` so fault-injection code can bump it without a
/// mutable borrow of the whole catalog.
#[derive(Default)]
pub struct Catalog {
    entries: BTreeMap<String, IndexDescriptor>,
    generation: Rc<Cell<u64>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) an index. Replacements bump the generation
    /// (descriptors cached by compute servers are now stale).
    pub fn register(&mut self, name: impl Into<String>, desc: IndexDescriptor) {
        if self.entries.insert(name.into(), desc).is_some() {
            self.bump_generation();
        }
    }

    /// Look up an index by name.
    pub fn lookup(&self, name: &str) -> Option<&IndexDescriptor> {
        self.entries.get(name)
    }

    /// Registered index names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Current catalog generation.
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Invalidate all cached descriptors (e.g. after a memory-server
    /// restart): clients comparing generations re-resolve on next use.
    pub fn bump_generation(&self) {
        self.generation.set(self.generation.get() + 1);
    }

    /// A shared handle to the generation counter, for code (like the
    /// fault injector) that must bump it without holding the catalog.
    pub fn generation_handle(&self) -> Rc<Cell<u64>> {
        self.generation.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(
            "orders_idx",
            IndexDescriptor {
                kind: IndexKind::FineGrained,
                root: RemotePtr::new(0, 64),
                partition: None,
                model: None,
            },
        );
        let d = cat.lookup("orders_idx").expect("registered");
        assert_eq!(d.kind, IndexKind::FineGrained);
        assert_eq!(d.root.server(), 0);
        assert!(cat.lookup("missing").is_none());
        assert_eq!(cat.names().count(), 1);
    }

    #[test]
    fn replace_updates() {
        let mut cat = Catalog::new();
        let mk = |server| IndexDescriptor {
            kind: IndexKind::CoarseGrained,
            root: RemotePtr::NULL,
            partition: Some(PartitionMap::range_uniform(server, 100)),
            model: None,
        };
        cat.register("t", mk(2));
        cat.register("t", mk(4));
        let d = cat.lookup("t").unwrap();
        assert_eq!(d.partition.as_ref().unwrap().num_servers(), 4);
        assert_eq!(cat.generation(), 1, "replacement bumps the generation");
    }

    #[test]
    fn generation_handle_is_shared() {
        let cat = Catalog::new();
        assert_eq!(cat.generation(), 0);
        let handle = cat.generation_handle();
        handle.set(handle.get() + 1);
        assert_eq!(cat.generation(), 1, "handle aliases the catalog counter");
        cat.bump_generation();
        assert_eq!(handle.get(), 2);
    }
}
