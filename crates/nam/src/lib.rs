#![warn(missing_docs)]

//! # nam — the Network-Attached-Memory architecture assembly
//!
//! The NAM architecture (Figure 1 of the paper) logically separates
//! *compute servers*, which run query/transaction logic, from *memory
//! servers*, which expose a shared RDMA-accessible memory pool. This
//! crate provides everything the three index designs (in `namdex-core`)
//! need from that architecture:
//!
//! * [`partition`] — key-space partitioning for the coarse-grained and
//!   hybrid designs: range (uniform or with explicit fractions, used to
//!   induce the paper's 80/12/5/3 attribute-value skew) and hash.
//! * [`node`] — per-memory-server state: the server's local B-link tree
//!   (a CG partition or the hybrid design's upper levels) and the
//!   work→CPU-time cost model for RPC handlers.
//! * [`durable`] — the adapter that exposes a server's local tree to the
//!   transport's crash-recovery machinery (`Durability::Wal`): wipe on
//!   crash, snapshot into fuzzy checkpoints, replay logged mutations.
//! * [`lock`] — a virtual-time lock table modelling handler spin-waits on
//!   contended page locks; wait time occupies the handler core, which is
//!   the degradation mechanism of Fig. 12.
//! * [`msg`] — RPC wire-format sizes (requests/responses) so two-sided
//!   traffic is charged byte-accurately.
//! * [`catalog`] — the catalog service compute servers consult for index
//!   roots and partition maps (§4.2: "part of a catalog service that is
//!   anyway used during query compilation").
//! * [`NamCluster`] — the assembled deployment.

pub mod catalog;
pub mod durable;
pub mod lock;
pub mod msg;
pub mod node;
pub mod partition;

pub use catalog::{Catalog, IndexDescriptor, IndexKind};
pub use durable::DurableTree;
pub use lock::LockTable;
pub use node::{handler_cpu_time, ServerNode};
pub use partition::PartitionMap;

use rdma_sim::{Cluster, ClusterSpec};
use simnet::Sim;

/// An assembled NAM deployment: the simulated RDMA cluster plus the
/// catalog service. Per-index server-side state ([`ServerNode`]) is
/// owned by each index, since a memory server hosts one local tree per
/// index it serves.
pub struct NamCluster {
    /// The underlying simulated RDMA cluster.
    pub rdma: Cluster,
    /// The catalog service.
    pub catalog: Catalog,
}

impl NamCluster {
    /// Deploy a NAM cluster on `sim` with the given spec.
    pub fn new(sim: &Sim, spec: ClusterSpec) -> Self {
        NamCluster {
            rdma: Cluster::new(sim, spec),
            catalog: Catalog::new(),
        }
    }

    /// Number of memory servers.
    pub fn num_servers(&self) -> usize {
        self.rdma.num_servers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_matches_spec() {
        let sim = Sim::new();
        let nam = NamCluster::new(&sim, ClusterSpec::with_memory_servers(6));
        assert_eq!(nam.num_servers(), 6);
    }
}
