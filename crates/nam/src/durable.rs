//! Durability adapter: a [`ServerNode`]'s local tree as [`DurableState`].
//!
//! Under `Durability::Wal` the transport wipes all server RAM on a crash
//! and rebuilds it from the checkpoint image plus log replay. The memory
//! pool recovers from `PoolWrite` / `PoolAllocTo` records on its own; the
//! server-*local* trees (a CG partition, the hybrid design's upper
//! levels) live outside the pool, so each index registers one
//! [`DurableTree`] per server to give the transport logical wipe /
//! snapshot / replay over them.
//!
//! Replay mirrors the original handler mutations verbatim:
//! `TreeInsert` re-runs `insert_at_leaf` (duplicate keys keep their
//! multiplicity), `TreeUpsert` re-runs `update_value` falling back to an
//! insert, `TreeDelete` re-runs the tombstone. Checkpoint snapshots scan
//! only live entries, which is exactly what a rebuilt tree must hold:
//! tombstoned entries carry no logical state and their space would be
//! reclaimed by the epoch GC anyway.

use std::rc::Rc;

use blink::{LocalTree, PageLayout};
use rdma_sim::DurableState;

use crate::node::ServerNode;

/// Exposes one server's local tree to the transport's crash-recovery
/// machinery. Holds the page geometry and fill factor so a checkpoint
/// snapshot can be bulk-loaded back into an equivalent tree.
pub struct DurableTree {
    node: Rc<ServerNode>,
    layout: PageLayout,
    fill: f64,
}

impl DurableTree {
    /// Wrap `node`'s tree; `layout` and `fill` must match how the index
    /// built it, so a restored tree has the same geometry.
    pub fn new(node: Rc<ServerNode>, layout: PageLayout, fill: f64) -> Self {
        DurableTree { node, layout, fill }
    }
}

impl DurableState for DurableTree {
    fn wipe(&self) {
        // Crash with volatile DRAM: the tree empties (an installed-but-
        // empty tree keeps `with_tree` callable during the recovery
        // window, though no handler runs while the server is down).
        self.node.install_tree(LocalTree::new(self.layout));
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        if !self.node.has_tree() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.node.with_tree(|t| t.range(0, u64::MAX, &mut out));
        out
    }

    fn restore(&self, entries: &[(u64, u64)]) {
        self.node.install_tree(LocalTree::bulk_load(
            self.layout,
            entries.to_vec(),
            self.fill,
        ));
    }

    fn upsert(&self, key: u64, value: u64) {
        self.node.with_tree(|t| {
            if !t.update_value(key, value).0 {
                t.insert_at_leaf(key, value);
            }
        });
    }

    fn insert(&self, key: u64, value: u64) {
        self.node.with_tree(|t| {
            t.insert_at_leaf(key, value);
        });
    }

    fn delete(&self, key: u64) {
        self.node.with_tree(|t| {
            t.delete_at_leaf(key);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_node(n: u64) -> Rc<ServerNode> {
        let node = Rc::new(ServerNode::new());
        node.install_tree(LocalTree::bulk_load(
            PageLayout::default(),
            (0..n).map(|i| (i * 8, i)),
            0.7,
        ));
        node
    }

    #[test]
    fn wipe_loses_everything_restore_brings_it_back() {
        let node = loaded_node(500);
        let d = DurableTree::new(node.clone(), PageLayout::default(), 0.7);
        let snap = d.snapshot();
        assert_eq!(snap.len(), 500);
        d.wipe();
        assert_eq!(d.snapshot(), Vec::new(), "crash must empty the tree");
        d.restore(&snap);
        assert_eq!(node.with_tree(|t| t.get(8 * 123).0), Some(123));
        assert_eq!(d.snapshot(), snap);
    }

    #[test]
    fn replay_mirrors_handler_mutations() {
        let node = loaded_node(10);
        let d = DurableTree::new(node.clone(), PageLayout::default(), 0.7);
        // Fresh insert, in-place upsert, duplicate-key insert, delete.
        d.insert(5, 100);
        assert_eq!(node.with_tree(|t| t.get(5).0), Some(100));
        d.upsert(5, 200);
        assert_eq!(node.with_tree(|t| t.get(5).0), Some(200));
        d.insert(5, 300);
        let mut dup = Vec::new();
        node.with_tree(|t| t.range(5, 5, &mut dup));
        assert_eq!(dup.len(), 2, "insert replay keeps duplicate keys");
        d.delete(5);
        assert_eq!(node.with_tree(|t| t.get(5).0), Some(300), "first live gone");
        // Upsert of an absent key degrades to an insert.
        d.upsert(999, 1);
        assert_eq!(node.with_tree(|t| t.get(999).0), Some(1));
    }

    #[test]
    fn snapshot_of_empty_node_is_empty() {
        let node = Rc::new(ServerNode::new());
        let d = DurableTree::new(node, PageLayout::default(), 0.7);
        assert_eq!(d.snapshot(), Vec::new());
    }
}
