//! Key-space partitioning for the coarse-grained and hybrid designs (§2.2).
//!
//! Two schemes, exactly the ones the paper analyses:
//!
//! * **Range** — server `i` owns keys up to an upper bound; range queries
//!   touch only the servers whose ranges intersect. Uneven bounds model
//!   the paper's attribute-value skew (80/12/5/3 assignment in §6.1).
//! * **Hash** — keys are hashed (FNV-1a, as in YCSB) to servers; point
//!   queries touch one server but range queries must broadcast to all —
//!   the cost Table 2 charges as `H·P·S` per range query.

use blink::Key;
use simnet::rng::fnv1a;

/// How an index's key space maps onto memory servers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionMap {
    /// Range partitioning: `bounds[i]` is the inclusive upper key bound
    /// of server `i`; the last bound must be `u64::MAX`.
    Range {
        /// Inclusive upper bounds, ascending, last = `u64::MAX`.
        bounds: Vec<Key>,
    },
    /// Hash partitioning over `servers` servers.
    Hash {
        /// Number of servers.
        servers: usize,
    },
}

impl PartitionMap {
    /// Range partitioning that splits `[0, domain)` evenly over `n`
    /// servers.
    pub fn range_uniform(n: usize, domain: Key) -> Self {
        assert!(n > 0 && domain >= n as u64);
        let per = domain / n as u64;
        let bounds = (0..n)
            .map(|i| {
                if i + 1 == n {
                    u64::MAX
                } else {
                    per * (i as u64 + 1) - 1
                }
            })
            .collect();
        PartitionMap::Range { bounds }
    }

    /// Range partitioning assigning the given fraction of `[0, domain)`
    /// to each server — the paper's skew instrument (e.g.
    /// `&[0.80, 0.12, 0.05, 0.03]`). Fractions must sum to ≈ 1.
    pub fn range_fractions(fractions: &[f64], domain: Key) -> Self {
        assert!(!fractions.is_empty());
        let total: f64 = fractions.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {total}"
        );
        let mut acc = 0.0;
        let n = fractions.len();
        let bounds = fractions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                acc += f;
                if i + 1 == n {
                    u64::MAX
                } else {
                    (acc * domain as f64) as u64 - 1
                }
            })
            .collect();
        PartitionMap::Range { bounds }
    }

    /// Hash partitioning over `n` servers.
    pub fn hash(n: usize) -> Self {
        assert!(n > 0);
        PartitionMap::Hash { servers: n }
    }

    /// Number of servers the index is spread over.
    pub fn num_servers(&self) -> usize {
        match self {
            PartitionMap::Range { bounds } => bounds.len(),
            PartitionMap::Hash { servers } => *servers,
        }
    }

    /// The server owning `key`.
    pub fn server_of(&self, key: Key) -> usize {
        match self {
            PartitionMap::Range { bounds } => {
                bounds.partition_point(|&b| b < key).min(bounds.len() - 1)
            }
            PartitionMap::Hash { servers } => (fnv1a(key) % *servers as u64) as usize,
        }
    }

    /// The servers a range query `[lo, hi]` must visit. Hash partitioning
    /// must broadcast (any server may hold qualifying keys).
    pub fn servers_for_range(&self, lo: Key, hi: Key) -> Vec<usize> {
        debug_assert!(lo <= hi);
        match self {
            PartitionMap::Range { bounds } => {
                let first = bounds.partition_point(|&b| b < lo).min(bounds.len() - 1);
                let last = bounds.partition_point(|&b| b < hi).min(bounds.len() - 1);
                (first..=last).collect()
            }
            PartitionMap::Hash { servers } => (0..*servers).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_uniform_covers_domain() {
        let p = PartitionMap::range_uniform(4, 1000);
        assert_eq!(p.num_servers(), 4);
        assert_eq!(p.server_of(0), 0);
        assert_eq!(p.server_of(249), 0);
        assert_eq!(p.server_of(250), 1);
        assert_eq!(p.server_of(999), 3);
        assert_eq!(p.server_of(u64::MAX - 1), 3, "overflow keys land on last");
    }

    #[test]
    fn range_fractions_skew() {
        let p = PartitionMap::range_fractions(&[0.80, 0.12, 0.05, 0.03], 1000);
        // 80% of uniform lookups land on server 0.
        let hits = (0..1000u64).filter(|&k| p.server_of(k) == 0).count();
        assert_eq!(hits, 800);
        assert_eq!(p.server_of(999), 3);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn fractions_must_sum_to_one() {
        let _ = PartitionMap::range_fractions(&[0.5, 0.2], 100);
    }

    #[test]
    fn hash_spreads_and_is_deterministic() {
        let p = PartitionMap::hash(4);
        let mut counts = [0usize; 4];
        for k in 0..10_000u64 {
            let s = p.server_of(k);
            assert_eq!(s, p.server_of(k));
            counts[s] += 1;
        }
        for &c in &counts {
            assert!((2000..3000).contains(&c), "hash imbalance: {counts:?}");
        }
    }

    #[test]
    fn range_query_server_sets() {
        let p = PartitionMap::range_uniform(4, 1000);
        assert_eq!(p.servers_for_range(10, 20), vec![0]);
        assert_eq!(p.servers_for_range(240, 260), vec![0, 1]);
        assert_eq!(p.servers_for_range(0, 999), vec![0, 1, 2, 3]);
        let h = PartitionMap::hash(4);
        assert_eq!(
            h.servers_for_range(10, 20),
            vec![0, 1, 2, 3],
            "hash broadcasts"
        );
    }
}
