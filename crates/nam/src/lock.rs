//! Virtual-time page lock table.
//!
//! In the coarse-grained design, RPC handler threads take page locks with
//! a local CAS and *spin* while a page is held (Listing 3:
//! `awaitNodeUnlocked`). The simulator executes each handler atomically
//! at its core-grant instant, so real spinning cannot happen — instead
//! this table tracks, in virtual time, until when each page lock is held,
//! and reports the spin-wait a handler would have suffered. The caller
//! adds that wait to the handler's CPU service time: **spinning occupies
//! the core**, which is exactly the degradation mechanism §6.3 names for
//! the coarse-grained and hybrid schemes under insert-heavy load.

use std::cell::RefCell;
use std::collections::BTreeMap;

use simnet::{SimDur, SimTime};

/// Tracks, per page, the virtual instant its lock is released.
#[derive(Default)]
pub struct LockTable {
    held_until: RefCell<BTreeMap<u64, SimTime>>,
}

impl LockTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire the lock on `page` at virtual time `now`, holding it for
    /// `hold` once acquired. Returns the spin-wait the acquirer suffers
    /// (zero if the lock is free).
    pub fn acquire(&self, page: u64, now: SimTime, hold: SimDur) -> SimDur {
        let mut map = self.held_until.borrow_mut();
        let free_at = map.get(&page).copied().unwrap_or(SimTime::ZERO).max(now);
        let wait = free_at.since(now);
        map.insert(page, free_at + hold);
        wait
    }

    /// Spin-wait a reader would suffer at `now` without taking the lock
    /// (Listing 3's `readLockOrRestart` spins until the node is unlocked).
    pub fn read_wait(&self, page: u64, now: SimTime) -> SimDur {
        self.held_until
            .borrow()
            .get(&page)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .since(now)
    }

    /// Drop bookkeeping for locks released before `now` (bounds memory in
    /// long runs).
    pub fn gc(&self, now: SimTime) {
        self.held_until.borrow_mut().retain(|_, &mut t| t > now);
    }

    /// Number of tracked (possibly released) locks.
    pub fn tracked(&self) -> usize {
        self.held_until.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_is_free() {
        let t = LockTable::new();
        let wait = t.acquire(7, SimTime::from_micros(10), SimDur::from_micros(2));
        assert_eq!(wait, SimDur::ZERO);
    }

    #[test]
    fn contended_lock_serialises() {
        let t = LockTable::new();
        let now = SimTime::from_micros(10);
        assert_eq!(t.acquire(7, now, SimDur::from_micros(2)), SimDur::ZERO);
        // Second acquirer at the same instant waits 2us.
        assert_eq!(
            t.acquire(7, now, SimDur::from_micros(2)),
            SimDur::from_micros(2)
        );
        // Third waits 4us.
        assert_eq!(
            t.acquire(7, now, SimDur::from_micros(2)),
            SimDur::from_micros(4)
        );
        // A different page is unaffected.
        assert_eq!(t.acquire(8, now, SimDur::from_micros(2)), SimDur::ZERO);
    }

    #[test]
    fn lock_expires_over_time() {
        let t = LockTable::new();
        t.acquire(7, SimTime::from_micros(0), SimDur::from_micros(2));
        let wait = t.acquire(7, SimTime::from_micros(100), SimDur::from_micros(2));
        assert_eq!(wait, SimDur::ZERO);
    }

    #[test]
    fn read_wait_observes_holders() {
        let t = LockTable::new();
        let now = SimTime::from_micros(0);
        t.acquire(7, now, SimDur::from_micros(5));
        assert_eq!(t.read_wait(7, now), SimDur::from_micros(5));
        assert_eq!(
            t.read_wait(7, SimTime::from_micros(3)),
            SimDur::from_micros(2)
        );
        assert_eq!(t.read_wait(7, SimTime::from_micros(9)), SimDur::ZERO);
        assert_eq!(t.read_wait(99, now), SimDur::ZERO);
    }

    #[test]
    fn gc_drops_released() {
        let t = LockTable::new();
        t.acquire(1, SimTime::from_micros(0), SimDur::from_micros(1));
        t.acquire(2, SimTime::from_micros(0), SimDur::from_micros(100));
        assert_eq!(t.tracked(), 2);
        t.gc(SimTime::from_micros(50));
        assert_eq!(t.tracked(), 1);
    }
}
