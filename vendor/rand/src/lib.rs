//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root manifest). It
//! implements exactly the API surface the workspace consumes — a seedable
//! small RNG plus `random`/`random_range` — with a deterministic
//! xoshiro256++ generator seeded via SplitMix64. Determinism is load-bearing
//! here: every simulation run must be reproducible from its seed, and this
//! crate deliberately offers no entropy-based constructors (`thread_rng`,
//! `from_os_rng`, ...), which also keeps the determinism lint trivially
//! satisfied.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform integer/float can be drawn from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply: uniform enough for
                // simulation workloads without a rejection loop.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), seeded via
    /// SplitMix64 like the upstream implementation.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn reproducible_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(rng.random_range(0u64..7) < 7);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut buckets = [0u64; 8];
        for _ in 0..80_000 {
            buckets[rng.random_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
