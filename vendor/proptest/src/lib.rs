//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root manifest).
//! It implements the subset of the proptest API the workspace's property
//! tests use: the `proptest!` macro with `#![proptest_config(..)]`,
//! integer/float range strategies, tuple strategies, `prop_map`,
//! `prop_oneof!`, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, on purpose:
//! - **Deterministic seeding.** Upstream seeds cases from OS entropy; this
//!   shim derives every case from a fixed seed mixed with the case index,
//!   so a failing case reproduces on every run and the determinism lint
//!   (`cargo xtask lint`) has nothing to flag.
//! - **No shrinking.** A failing case reports the generated inputs verbatim
//!   instead of minimising them.

/// Strategy combinators and base strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Unlike upstream this is generation-only (no value tree / shrinking),
    /// which keeps it object-safe so `prop_oneof!` can box heterogeneous
    /// strategies.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                    lo + v as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Types with a canonical "any value" strategy (see [`super::any`]).
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`super::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform choice between boxed alternatives (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs >= 1 option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let n = self.options.len() as u64;
            let idx = ((rng.next_u64() as u128 * n as u128) >> 64) as usize;
            self.options[idx].generate(rng)
        }
    }
}

/// Strategy for any value of type `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A count or range of counts for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-case execution: config, RNG, and error plumbing.
pub mod test_runner {
    /// Run-time configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections tolerated before erroring.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    ///
    /// Fixed seeding is deliberate: the same case index generates the same
    /// inputs on every run, machine, and CI job.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name decorrelates tests that run the
            // same case indices.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// leading `#![proptest_config(expr)]`, then any number of `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while passed < config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                case += 1;
                let __vals = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut rng),
                )*);
                let __desc = format!("{:?}", __vals);
                let ($($pat,)*) = __vals;
                let __outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections \
                             ({rejected})",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name),
                            case - 1,
                            msg,
                            __desc,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @fns ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Like `assert_ne!` but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Reject the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_hold(x in 5u64..50, y in 0usize..3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn assume_skips(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (0u64..10).prop_map(|x| x * 2 + 1),
        ], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 20));
        }

        #[test]
        fn bools(mask in prop::collection::vec(any::<bool>(), 8)) {
            prop_assert_eq!(mask.len(), 8);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (0u64..1000, 0u64..1000);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
