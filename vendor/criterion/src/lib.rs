//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! manifest). It implements the subset of the criterion API the `bench`
//! crate's benchmarks use, with a simple wall-clock timing loop instead of
//! criterion's statistical machinery: enough to compile, run, and print
//! per-iteration timings for `cargo bench`, without any plotting or
//! statistics dependencies.

// The shim's whole job is wall-clock timing, so the workspace determinism
// bans on Instant/SystemTime don't apply here (vendor/* also skips the
// `cargo xtask lint` scan for the same reason).
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing loop handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, repeating it enough times to get a stable estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took > Duration::from_millis(10) || batch >= (1 << 20) {
                self.iters = batch;
                self.elapsed = took;
                return;
            }
            batch *= 2;
        }
    }

    /// Time `routine` over fresh `setup()` output each iteration, with the
    /// setup cost excluded from the measurement.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate as `iter` does, but accumulate only the routine's time.
        let mut batch: u64 = 1;
        loop {
            let mut timed = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            if timed > Duration::from_millis(10) || batch >= (1 << 20) {
                self.iters = batch;
                self.elapsed = timed;
                return;
            }
            batch *= 2;
        }
    }
}

/// Identifier for one parameterised benchmark instance.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named only by its parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Benchmark named `function_name/parameter`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tuning knob; accepted and ignored here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream tuning knob; accepted and ignored here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Run one unparameterised benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, name);
        self.criterion.run_one(&name, |b| f(b));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        println!(
            "bench {name:<40} {per_iter:>12.1} ns/iter ({} iters)",
            b.iters
        );
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Collect benchmark functions into a group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn api_surface_works() {
        let mut c = Criterion::default();
        trivial(&mut c);
    }
}
